//! A/B check that the observability layer is zero-cost when disabled:
//! the kernel_baseline ping-pong scenario, run with the obs handle
//! absent (the default) and with it attached, must land within
//! run-to-run noise of each other. Same interleaved-pairs methodology
//! as the PR 2 crashpoint-hook check.
//!
//! This is a wall-clock test, so it is deliberately forgiving: medians
//! over interleaved pairs, a generous tolerance, and a retry before
//! declaring failure — it should only trip on a systematic per-event
//! cost, not scheduler jitter.

use dvp::obs::Obs;
use dvp::workloads::BankingWorkload;
use dvp_core::{Cluster, ClusterConfig};
use dvp_simnet::network::NetworkConfig;
use dvp_simnet::node::{Context, Node};
use dvp_simnet::sim::Simulation;
use dvp_simnet::NodeId;
use std::time::Instant;

const ROUNDS: u64 = 60_000;

/// Windowed ping-pong from `kernel_baseline`: node 0 keeps a window of
/// pings in flight and refills on every pong. Pure enqueue/dequeue/
/// dispatch/transmit — the hottest kernel path, zero obs events emitted.
#[derive(Default)]
struct Bouncer {
    remaining: u64,
    window: u32,
}

#[derive(Clone, Debug)]
enum BMsg {
    Ping,
    Pong,
}

impl Node for Bouncer {
    type Msg = BMsg;

    fn on_start(&mut self, ctx: &mut Context<'_, BMsg>) {
        for _ in 0..self.window.min(self.remaining as u32) {
            self.remaining -= 1;
            ctx.send(1, BMsg::Ping);
        }
    }

    fn on_message(&mut self, from: NodeId, msg: BMsg, ctx: &mut Context<'_, BMsg>) {
        match msg {
            BMsg::Ping => ctx.send(from, BMsg::Pong),
            BMsg::Pong => {
                if self.remaining > 0 {
                    self.remaining -= 1;
                    ctx.send(1, BMsg::Ping);
                }
            }
        }
    }
}

fn ping_pong(obs: Obs) -> f64 {
    let nodes = vec![
        Bouncer {
            remaining: ROUNDS,
            window: 32,
        },
        Bouncer::default(),
    ];
    let mut sim = Simulation::new(nodes, NetworkConfig::reliable(), 1);
    sim.set_obs(obs);
    let t = Instant::now();
    let events = sim.run_to_quiescence();
    events as f64 / t.elapsed().as_secs_f64()
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

/// One interleaved A/B session: alternate disabled/attached runs so a
/// mid-session frequency or load shift hits both arms equally.
fn ab_ratio() -> f64 {
    // Warm-up: fault in code and touch the allocator on both paths.
    ping_pong(Obs::disabled());
    ping_pong(Obs::new(false));
    let (mut a, mut b) = (Vec::new(), Vec::new());
    for i in 0..7 {
        if i % 2 == 0 {
            a.push(ping_pong(Obs::disabled()));
            b.push(ping_pong(Obs::new(false)));
        } else {
            b.push(ping_pong(Obs::new(false)));
            a.push(ping_pong(Obs::disabled()));
        }
    }
    median(b) / median(a)
}

/// One closed-loop engine run (the `engine_baseline` banking scenario,
/// shrunk): full DvP transaction processing — solicitation, group-commit
/// forces, Vm traffic — with the given obs handle. Returns events/sec.
fn engine_banking(w: &dvp::workloads::Workload, obs: Obs) -> f64 {
    let mut cfg = ClusterConfig::new(w.scripts.len(), w.catalog.clone());
    cfg.scripts = w.scripts.clone();
    cfg.obs = obs;
    let mut cl = Cluster::build(cfg);
    let t = Instant::now();
    let events = cl.sim.run_to_quiescence();
    events as f64 / t.elapsed().as_secs_f64()
}

/// Interleaved A/B session over the *engine* path (the group-commit PR
/// reworked its hot loops, so the zero-cost claim is re-proved here, not
/// just on the kernel ping-pong).
fn engine_ab_ratio() -> f64 {
    let w = BankingWorkload {
        n_sites: 8,
        accounts: 16,
        txns: 1_500,
        ..Default::default()
    }
    .generate(42);
    engine_banking(&w, Obs::disabled());
    engine_banking(&w, Obs::new(false));
    let (mut a, mut b) = (Vec::new(), Vec::new());
    for i in 0..7 {
        if i % 2 == 0 {
            a.push(engine_banking(&w, Obs::disabled()));
            b.push(engine_banking(&w, Obs::new(false)));
        } else {
            b.push(engine_banking(&w, Obs::new(false)));
            a.push(engine_banking(&w, Obs::disabled()));
        }
    }
    median(b) / median(a)
}

#[test]
fn obs_disabled_is_within_run_to_run_noise_on_engine_path() {
    let mut last = 0.0;
    for _ in 0..3 {
        last = engine_ab_ratio();
        if (0.75..=1.33).contains(&last) {
            return;
        }
    }
    panic!(
        "attached/disabled engine throughput ratio {last:.3} outside noise band after 3 sessions"
    );
}

#[test]
fn obs_disabled_is_within_run_to_run_noise_of_kernel_baseline() {
    // The attached-but-disabled handle costs one branch per dispatch; a
    // real per-event cost would show up as a systematic ratio shift far
    // beyond scheduler noise. Accept the first session within 25%, retry
    // twice for a machine having a moment.
    let mut last = 0.0;
    for _ in 0..3 {
        last = ab_ratio();
        if (0.75..=1.33).contains(&last) {
            return;
        }
    }
    panic!("attached/disabled throughput ratio {last:.3} outside noise band after 3 sessions");
}
