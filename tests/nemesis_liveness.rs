//! Liveness regression across the nemesis matrix, on both engines.
//!
//! The claim under test (paper §6, and the whole point of non-blocking
//! commitment): once the last fault has healed and a bounded settle
//! window has drained, **every transaction ever started on a live site
//! has been decided** — committed or aborted, but never stuck.
//!
//! * DvP engine: `run_campaign` runs the post-settle liveness oracle
//!   (`check_liveness`) alongside the safety suite; a stuck transaction
//!   is a campaign violation like any other.
//! * Traditional 2PC baseline: the same generated schedules (crashes,
//!   recoveries, partitions, chaos) are applied to the baseline cluster,
//!   and `still_blocked()` must be zero after the same settle window —
//!   in-doubt participants resolve by querying recovered coordinators.

use dvp::prelude::*;
use dvp::workloads::AirlineWorkload;
use dvp_core::SiteConfig;
use dvp_nemesis::{generate, legacy_environment, run_campaign, CampaignConfig, Intensity};

const N_SITES: usize = 4;
const HORIZON_MS: u64 = 800;
const SEEDS: u64 = 25;

fn ms(n: u64) -> SimTime {
    SimTime::ZERO + SimDuration::millis(n)
}

fn workload(seed: u64) -> dvp::workloads::Workload {
    AirlineWorkload {
        n_sites: N_SITES,
        flights: 2,
        seats_per_flight: 400,
        txns: 30,
        ..Default::default()
    }
    .generate(seed)
}

fn campaign(seed: u64, site: SiteConfig) -> CampaignConfig {
    let w = workload(seed);
    CampaignConfig {
        seed,
        n_sites: N_SITES,
        horizon_ms: HORIZON_MS,
        audit_points: 6,
        site,
        base_net: legacy_environment(),
        catalog: w.catalog,
        scripts: w.scripts,
        trace: false,
    }
}

/// DvP: the full matrix (plain, checkpointing, and media-fault mixes)
/// settles with every transaction decided, across ≥25 seeds each.
#[test]
fn dvp_settles_every_transaction_across_the_nemesis_matrix() {
    let plain = SiteConfig::default();
    let ckpt = SiteConfig {
        checkpoint_every: Some(8),
        ..plain
    };
    let matrix: [(&str, SiteConfig, Intensity); 3] = [
        ("standard", plain, Intensity::standard()),
        ("standard-ckpt", ckpt, Intensity::standard()),
        ("media-ckpt", ckpt, Intensity::media()),
    ];
    for (name, site, intensity) in matrix {
        for seed in 0..SEEDS {
            let sched = generate(seed, N_SITES, HORIZON_MS, &intensity);
            let r = run_campaign(&campaign(seed, site), &sched);
            assert!(r.passed(), "{name} seed {seed}: {:?}", r.violation);
        }
    }
}

/// The 2PC baseline under the same fault schedules: after settle, no
/// participant is still blocked in-doubt. (Media faults are DvP-storage
/// specific, so the baseline runs the standard mix.)
#[test]
fn trad_baseline_unblocks_after_every_standard_campaign() {
    let mut total_committed = 0u64;
    for seed in 0..SEEDS {
        let sched = generate(seed, N_SITES, HORIZON_MS, &Intensity::standard());
        let applied = sched.apply(N_SITES, legacy_environment());
        let w = workload(seed);
        let mut trad = Scenario::trad(&w)
            .seed(seed)
            .net(applied.net)
            .faults(applied.faults)
            .build_trad();
        trad.run_until(ms(HORIZON_MS * 2 + 1_000));
        let m = trad.metrics();
        assert_eq!(
            m.still_blocked(),
            0,
            "seed {seed}: {} transaction(s) still in doubt after settle",
            m.still_blocked()
        );
        total_committed += m.committed();
    }
    // Liveness, not availability: single seeds may legitimately commit
    // nothing under a hostile schedule (quorums need the whole cluster),
    // but the matrix as a whole must make real progress.
    assert!(total_committed > 0, "baseline never committed anything");
}
