//! Property tests for the partition-schedule algebra.
//!
//! `connected` must be an equivalence relation at every instant
//! (reflexive, symmetric, transitive), `heal_at` must restore full
//! connectivity from its instant onward, and `split_at` must treat
//! unlisted sites as isolated and empty groups as meaningless — for
//! *any* sequence of time-ordered transitions, not just the handful the
//! unit tests pin.

use dvp::prelude::*;
use proptest::collection::vec;
use proptest::prelude::*;

fn t(ms: u64) -> SimTime {
    SimTime::ZERO + SimDuration::millis(ms)
}

/// One randomly generated transition.
#[derive(Clone, Debug)]
enum Step {
    /// Split by a per-site group id (same id ⇒ same group); sites mapped
    /// to `None` are left unlisted (⇒ isolated).
    Split(Vec<Option<u8>>),
    Heal,
}

/// Build a schedule for `n` sites from `steps`, spacing transitions
/// 10 ms apart (monotone by construction). Returns the schedule plus the
/// transition instants.
fn build(n: usize, steps: &[Step]) -> (PartitionSchedule, Vec<u64>) {
    let mut s = PartitionSchedule::fully_connected(n);
    let mut times = Vec::new();
    for (k, step) in steps.iter().enumerate() {
        let at = 10 * (k as u64 + 1);
        times.push(at);
        match step {
            Step::Heal => s = s.heal_at(t(at)),
            Step::Split(ids) => {
                // Group sites by id; unlisted (None) sites stay out.
                let mut groups: Vec<Vec<usize>> = Vec::new();
                let mut seen: Vec<u8> = Vec::new();
                for (site, id) in ids.iter().take(n).enumerate() {
                    if let Some(id) = id {
                        match seen.iter().position(|&x| x == *id) {
                            Some(g) => groups[g].push(site),
                            None => {
                                seen.push(*id);
                                groups.push(vec![site]);
                            }
                        }
                    }
                }
                let refs: Vec<&[usize]> = groups.iter().map(|g| &g[..]).collect();
                s = s.split_at(t(at), &refs);
            }
        }
    }
    (s, times)
}

/// `None` (unlisted ⇒ isolated) or a group id in `0..3`.
fn maybe_id() -> impl Strategy<Value = Option<u8>> {
    (0u8..4).prop_map(|x| if x == 0 { None } else { Some(x - 1) })
}

fn step_strategy(n: usize) -> impl Strategy<Value = Step> {
    prop_oneof![
        Just(Step::Heal),
        vec(maybe_id(), n..(n + 1)).prop_map(Step::Split),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `connected` is an equivalence relation at every probed instant —
    /// including instants before, at, between, and after transitions.
    #[test]
    fn connected_is_an_equivalence_relation(
        n in 2usize..6,
        raw in vec(step_strategy(5), 0..6),
        probe in 0u64..80,
    ) {
        let (s, _) = build(n, &raw);
        let at = t(probe);
        for a in 0..n {
            prop_assert!(s.connected(a, a, at), "reflexive: {a}");
            for b in 0..n {
                prop_assert_eq!(
                    s.connected(a, b, at),
                    s.connected(b, a, at),
                    "symmetric: {} {}", a, b
                );
                for c in 0..n {
                    if s.connected(a, b, at) && s.connected(b, c, at) {
                        prop_assert!(
                            s.connected(a, c, at),
                            "transitive: {} {} {}", a, b, c
                        );
                    }
                }
            }
        }
    }

    /// After a heal (and before any later split), everything in range is
    /// mutually connected and `is_partitioned` is false.
    #[test]
    fn heal_restores_full_connectivity(
        n in 2usize..6,
        raw in vec(step_strategy(5), 0..5),
    ) {
        let mut steps = raw;
        steps.push(Step::Heal);
        let (s, times) = build(n, &steps);
        let at = t(*times.last().unwrap());
        prop_assert!(!s.is_partitioned(at));
        for a in 0..n {
            for b in 0..n {
                prop_assert!(s.connected(a, b, at), "healed: {} {}", a, b);
            }
        }
    }

    /// In a split, unlisted sites are isolated from everyone (including
    /// each other), listed sites reach exactly their co-group members,
    /// and out-of-range sites reach nothing but themselves.
    #[test]
    fn split_semantics(
        n in 2usize..6,
        ids in vec(maybe_id(), 5..6),
    ) {
        let (s, times) = build(n, &[Step::Split(ids.clone())]);
        let at = t(times[0]);
        for a in 0..n {
            for b in 0..n {
                let expect = a == b
                    || matches!((&ids[a], &ids[b]), (Some(x), Some(y)) if x == y);
                prop_assert_eq!(
                    s.connected(a, b, at), expect,
                    "sites {} {} ids {:?} {:?}", a, b, ids[a], ids[b]
                );
            }
        }
        // Out-of-range: only the self-loop.
        prop_assert!(s.connected(n + 1, n + 1, at));
        prop_assert!(!s.connected(0, n + 1, at));
        prop_assert!(!s.connected(n + 1, 0, at));
        // is_partitioned agrees with the existence of a split pair.
        let any_split = (0..n).any(|a| (0..n).any(|b| !s.connected(a, b, at)));
        prop_assert_eq!(s.is_partitioned(at), any_split);
    }

    /// `group_of` is consistent with `connected`, and groups are either
    /// identical or disjoint (they partition the site set).
    #[test]
    fn groups_partition_the_site_set(
        n in 2usize..6,
        raw in vec(step_strategy(5), 0..6),
        probe in 0u64..80,
    ) {
        let (s, _) = build(n, &raw);
        let at = t(probe);
        for a in 0..n {
            let ga = s.group_of(a, at);
            prop_assert!(ga.contains(&a));
            for b in 0..n {
                let gb = s.group_of(b, at);
                if s.connected(a, b, at) {
                    prop_assert_eq!(&ga, &gb, "connected sites share a group");
                } else {
                    prop_assert!(
                        ga.iter().all(|x| !gb.contains(x)),
                        "disconnected sites' groups must be disjoint"
                    );
                }
            }
        }
    }
}

/// Empty groups in `split_at` change nothing: splitting with all sites
/// in one group plus any number of empty groups stays fully connected.
#[test]
fn empty_groups_are_inert() {
    let all: Vec<usize> = (0..4).collect();
    let s = PartitionSchedule::fully_connected(4).split_at(t(10), &[&[], &all, &[]]);
    for a in 0..4 {
        for b in 0..4 {
            assert!(s.connected(a, b, t(10)));
        }
    }
    assert!(!s.is_partitioned(t(10)));
}
