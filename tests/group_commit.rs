//! Group-commit regression tests: the flush-boundary force coalescing
//! must (a) measurably cut forces per transaction on the standard
//! banking workload, (b) change *nothing* about the protocol — commits,
//! aborts, and message traffic stay identical to per-record forcing —
//! and (c) stay deterministic: the same scenario and seed reproduce the
//! same counters run over run, for every seed tried.

use dvp::prelude::*;
use dvp::workloads::BankingWorkload;

/// The standard banking workload at its default shape.
fn banking(seed: u64) -> dvp::workloads::Workload {
    BankingWorkload::default().generate(seed)
}

fn run(w: &dvp::workloads::Workload, group_commit: bool, seed: u64) -> RunReport {
    Scenario::dvp(w)
        .name(if group_commit {
            "gc/banking-batched"
        } else {
            "gc/banking-per-record"
        })
        .site(SiteConfig {
            group_commit,
            ..SiteConfig::default()
        })
        .seed(seed)
        .run()
}

#[test]
fn group_commit_cuts_forces_per_txn_on_standard_banking() {
    for seed in [1u64, 7, 42] {
        let w = banking(seed);
        let batched = run(&w, true, seed);
        let classic = run(&w, false, seed);

        // The protocol is untouched: same decisions, same traffic.
        assert_eq!(batched.committed, classic.committed, "seed {seed}");
        assert_eq!(batched.aborted, classic.aborted, "seed {seed}");
        assert_eq!(batched.messages, classic.messages, "seed {seed}");
        assert_eq!(batched.donations, classic.donations, "seed {seed}");

        // The forces are coalesced: measurably fewer per transaction.
        let decided = (batched.committed + batched.aborted).max(1);
        let fpt_batched = batched.forces as f64 / decided as f64;
        let fpt_classic = classic.forces as f64 / decided as f64;
        assert!(
            batched.forces < classic.forces,
            "seed {seed}: {} batched forces not below {} per-record forces",
            batched.forces,
            classic.forces
        );
        println!(
            "seed {seed}: forces/txn {fpt_classic:.3} -> {fpt_batched:.3} \
             ({} -> {} forces over {decided} decided)",
            classic.forces, batched.forces
        );
    }
}

#[test]
fn group_commit_counters_are_stable_across_reruns() {
    for seed in [1u64, 7, 42] {
        let w = banking(seed);
        let a = run(&w, true, seed);
        let b = run(&w, true, seed);
        assert_eq!(a.forces, b.forces, "seed {seed}: forces drifted");
        assert_eq!(a.committed, b.committed, "seed {seed}");
        assert_eq!(a.aborted, b.aborted, "seed {seed}");
        assert_eq!(a.messages, b.messages, "seed {seed}");
    }
}
