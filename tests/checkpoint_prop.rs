//! Checkpoint-equivalence property: for any workload prefix, any crash
//! point, and any checkpoint cadence, a site that recovers *through a
//! checkpoint* must end in exactly the state a checkpoint-free site
//! reaches — checkpoints are an optimization, never a semantic change.

use dvp::prelude::*;
use dvp::workloads::AirlineWorkload;
use proptest::prelude::*;

fn ms(n: u64) -> SimTime {
    SimTime::ZERO + SimDuration::millis(n)
}

fn run(
    seed: u64,
    checkpoint_every: Option<usize>,
    crash_site: usize,
    crash_ms: u64,
    down_ms: u64,
) -> (u64, Vec<Vec<u64>>) {
    let w = AirlineWorkload {
        n_sites: 4,
        flights: 2,
        seats_per_flight: 2_000,
        txns: 60,
        site_skew: 1.0, // some skew => donations => Vm state in checkpoints
        mix: (0.7, 0.2, 0.05, 0.05),
        ..Default::default()
    }
    .generate(seed);
    let mut cfg = ClusterConfig::new(4, w.catalog.clone());
    cfg.scripts = w.scripts.clone();
    cfg.seed = seed;
    cfg.site.checkpoint_every = checkpoint_every;
    cfg.faults = FaultPlan::none()
        .crash(ms(crash_ms), crash_site)
        .recover(ms(crash_ms + down_ms), crash_site);
    let mut cl = Cluster::build(cfg);
    cl.run_until(ms(60_000));
    cl.auditor().check_conservation().unwrap();
    let frags: Vec<Vec<u64>> = (0..4)
        .map(|s| cl.sim.node(s).fragments().snapshot())
        .collect();
    (cl.metrics().committed(), frags)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn checkpointing_never_changes_outcomes(
        seed in any::<u64>(),
        cadence in 1usize..40,
        crash_site in 0usize..4,
        crash_ms in 5u64..400,
        down_ms in 10u64..200,
    ) {
        let plain = run(seed, None, crash_site, crash_ms, down_ms);
        let ckpt = run(seed, Some(cadence), crash_site, crash_ms, down_ms);
        prop_assert_eq!(plain.0, ckpt.0, "commit counts must match");
        prop_assert_eq!(&plain.1, &ckpt.1, "final fragments must match");
    }
}

/// Checkpoints also compose with *repeated* crashes of the same site.
#[test]
fn repeated_crashes_through_checkpoints() {
    let w = AirlineWorkload {
        n_sites: 3,
        flights: 1,
        seats_per_flight: 3_000,
        txns: 80,
        site_skew: 1.5,
        mix: (0.8, 0.2, 0.0, 0.0),
        ..Default::default()
    }
    .generate(99);
    let mut cfg = ClusterConfig::new(3, w.catalog.clone());
    cfg.scripts = w.scripts.clone();
    cfg.site.checkpoint_every = Some(5); // checkpoint very frequently
    cfg.faults = FaultPlan::none()
        .crash(ms(50), 1)
        .recover(ms(80), 1)
        .crash(ms(150), 1)
        .recover(ms(200), 1)
        .crash(ms(260), 2)
        .recover(ms(310), 2);
    let mut cl = Cluster::build(cfg);
    cl.run_until(ms(60_000));
    cl.auditor().check_conservation().unwrap();
    let m = cl.metrics();
    assert_eq!(m.sites[1].recoveries, 2);
    assert_eq!(m.sites[2].recoveries, 1);
    assert!(m.sites.iter().map(|s| s.checkpoints).sum::<u64>() > 5);
    // The log of the frequently-checkpointing hot site stays small.
    assert!(cl.sim.node(0).log().stable_len() <= 10);
}
