//! Checkpoint-equivalence property: for any workload prefix, any crash
//! point, and any checkpoint cadence, a site that recovers *through a
//! checkpoint* must end in exactly the state a checkpoint-free site
//! reaches — checkpoints are an optimization, never a semantic change.

use dvp::prelude::*;
use dvp::workloads::AirlineWorkload;
use proptest::prelude::*;

fn ms(n: u64) -> SimTime {
    SimTime::ZERO + SimDuration::millis(n)
}

fn run(
    seed: u64,
    checkpoint_every: Option<usize>,
    crash_site: usize,
    crash_ms: u64,
    down_ms: u64,
) -> (u64, Vec<Vec<u64>>) {
    let w = AirlineWorkload {
        n_sites: 4,
        flights: 2,
        seats_per_flight: 2_000,
        txns: 60,
        site_skew: 1.0, // some skew => donations => Vm state in checkpoints
        mix: (0.7, 0.2, 0.05, 0.05),
        ..Default::default()
    }
    .generate(seed);
    let mut cfg = ClusterConfig::new(4, w.catalog.clone());
    cfg.scripts = w.scripts.clone();
    cfg.seed = seed;
    cfg.site.checkpoint_every = checkpoint_every;
    cfg.faults = FaultPlan::none()
        .crash(ms(crash_ms), crash_site)
        .recover(ms(crash_ms + down_ms), crash_site);
    let mut cl = Cluster::build(cfg);
    cl.run_until(ms(60_000));
    cl.auditor().check_conservation().unwrap();
    let frags: Vec<Vec<u64>> = (0..4)
        .map(|s| cl.sim.node(s).fragments().snapshot())
        .collect();
    (cl.stats().txn.committed(), frags)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn checkpointing_never_changes_outcomes(
        seed in any::<u64>(),
        cadence in 1usize..40,
        crash_site in 0usize..4,
        crash_ms in 5u64..400,
        down_ms in 10u64..200,
    ) {
        let plain = run(seed, None, crash_site, crash_ms, down_ms);
        let ckpt = run(seed, Some(cadence), crash_site, crash_ms, down_ms);
        prop_assert_eq!(plain.0, ckpt.0, "commit counts must match");
        prop_assert_eq!(&plain.1, &ckpt.1, "final fragments must match");
    }
}

/// Checkpoints also compose with *repeated* crashes of the same site.
#[test]
fn repeated_crashes_through_checkpoints() {
    let w = AirlineWorkload {
        n_sites: 3,
        flights: 1,
        seats_per_flight: 3_000,
        txns: 80,
        site_skew: 1.5,
        mix: (0.8, 0.2, 0.0, 0.0),
        ..Default::default()
    }
    .generate(99);
    let mut cfg = ClusterConfig::new(3, w.catalog.clone());
    cfg.scripts = w.scripts.clone();
    cfg.site.checkpoint_every = Some(5); // checkpoint very frequently
    cfg.faults = FaultPlan::none()
        .crash(ms(50), 1)
        .recover(ms(80), 1)
        .crash(ms(150), 1)
        .recover(ms(200), 1)
        .crash(ms(260), 2)
        .recover(ms(310), 2);
    let mut cl = Cluster::build(cfg);
    cl.run_until(ms(60_000));
    cl.auditor().check_conservation().unwrap();
    let m = cl.stats().txn;
    assert_eq!(m.sites[1].recoveries, 2);
    assert_eq!(m.sites[2].recoveries, 1);
    assert!(m.sites.iter().map(|s| s.checkpoints).sum::<u64>() > 5);
    // The log of the frequently-checkpointing hot site stays small.
    assert!(cl.sim.node(0).log().stable_len() <= 10);
}

// ---- torn-write and crashpoint recovery (nemesis injection) ------------

/// Run the standard 4-site workload with injection `inject` on top of a
/// crash/recover of `victim`, then return (committed, fragment images).
fn run_injected(
    seed: u64,
    checkpoint_every: Option<usize>,
    inject: InjectConfig,
    victim: usize,
    crash_ms: u64,
) -> (u64, Vec<Vec<u64>>) {
    let w = AirlineWorkload {
        n_sites: 4,
        flights: 2,
        seats_per_flight: 2_000,
        txns: 60,
        site_skew: 1.0,
        mix: (0.7, 0.2, 0.05, 0.05),
        ..Default::default()
    }
    .generate(seed);
    let mut cfg = ClusterConfig::new(4, w.catalog.clone());
    cfg.scripts = w.scripts.clone();
    cfg.seed = seed;
    cfg.site.checkpoint_every = checkpoint_every;
    cfg.site.inject = inject;
    cfg.faults = FaultPlan::none()
        .crash(ms(crash_ms), victim)
        .recover(ms(crash_ms + 40), victim);
    let mut cl = Cluster::build(cfg);
    cl.run_until(ms(60_000));
    cl.auditor().check_conservation().unwrap();
    let frags: Vec<Vec<u64>> = (0..4)
        .map(|s| cl.sim.node(s).fragments().snapshot())
        .collect();
    (cl.stats().txn.committed(), frags)
}

/// A crash that tears the unforced log tail recovers to the same state
/// as a clean crash: the torn frame never committed, so dropping it is
/// semantically invisible.
#[test]
fn torn_tail_recovery_is_equivalent_to_clean_crash() {
    for seed in [7u64, 19, 42] {
        for mode in [TornWrite::Truncated, TornWrite::Garbage] {
            let clean = run_injected(seed, None, InjectConfig::default(), 1, 120);
            let torn = run_injected(seed, None, InjectConfig::torn_at(1, mode), 1, 120);
            assert_eq!(clean, torn, "seed {seed}, {mode:?}");
        }
    }
}

/// Torn tails compose with checkpoints: restoring a checkpoint image and
/// redoing a log whose tail tore must equal the checkpoint-free run.
#[test]
fn torn_tail_through_checkpoint_matches_plain_recovery() {
    for seed in [3u64, 11] {
        let plain = run_injected(
            seed,
            None,
            InjectConfig::torn_at(1, TornWrite::Garbage),
            1,
            120,
        );
        let ckpt = run_injected(
            seed,
            Some(8),
            InjectConfig::torn_at(1, TornWrite::Garbage),
            1,
            120,
        );
        assert_eq!(plain.0, ckpt.0, "commit counts must match (seed {seed})");
        assert_eq!(
            &plain.1, &ckpt.1,
            "final fragments must match (seed {seed})"
        );
    }
}

/// A crash injected *between* checkpoint installation and log truncation
/// must not double-apply the snapshotted prefix on recovery: the LSN
/// skip in redo keeps recovery exact.
#[test]
fn mid_checkpoint_crash_recovers_exactly() {
    let w = AirlineWorkload {
        n_sites: 4,
        flights: 2,
        seats_per_flight: 2_000,
        txns: 60,
        site_skew: 1.0,
        mix: (0.8, 0.2, 0.0, 0.0),
        ..Default::default()
    }
    .generate(5);
    let run = |inject: InjectConfig| {
        let mut cfg = ClusterConfig::new(4, w.catalog.clone());
        cfg.scripts = w.scripts.clone();
        cfg.seed = 5;
        cfg.site.checkpoint_every = Some(6);
        cfg.site.inject = inject;
        // The crashpoint crashes the victim from inside the protocol;
        // this recovery brings it back.
        cfg.faults = FaultPlan::none().recover(ms(250), 1);
        let mut cl = Cluster::build(cfg);
        cl.run_until(ms(60_000));
        cl.auditor().check_conservation().unwrap();
        let m = cl.stats().txn;
        (m.crashpoint_trips(), m.sites[1].recoveries)
    };
    let (trips, recoveries) = run(InjectConfig::crashpoint_at(1, Crashpoint::MidCheckpoint));
    assert_eq!(trips, 1, "the mid-checkpoint crashpoint must fire");
    assert_eq!(recoveries, 1, "the victim must recover through it");
}

// ---- media failures: dual-slot fallback and mid-log bit rot ------------

/// The previous checkpoint generation stays recoverable: corrupting
/// either physical slot while a `MidCheckpoint` crashpoint kills the
/// victim still recovers to the exact clean-run state. When the rot hit
/// the newest image, the dual-slot store must fall back a generation
/// (losslessly — log truncation always retains the older generation's
/// redo window).
#[test]
fn mid_checkpoint_crash_with_a_rotten_slot_falls_back_losslessly() {
    let w = AirlineWorkload {
        n_sites: 4,
        flights: 2,
        seats_per_flight: 2_000,
        txns: 60,
        site_skew: 1.0,
        mix: (0.8, 0.2, 0.0, 0.0),
        ..Default::default()
    }
    .generate(5);
    let run = |corrupt: Option<u8>| {
        let mut inject = InjectConfig::crashpoint_at(1, Crashpoint::MidCheckpoint);
        inject.corrupt_ckpt = corrupt;
        let mut cfg = ClusterConfig::new(4, w.catalog.clone());
        cfg.scripts = w.scripts.clone();
        cfg.seed = 5;
        cfg.site.checkpoint_every = Some(6);
        cfg.site.inject = inject;
        cfg.faults = FaultPlan::none().recover(ms(250), 1);
        let mut cl = Cluster::build(cfg);
        cl.run_until(ms(60_000));
        cl.auditor().check_conservation().unwrap();
        let frags: Vec<Vec<u64>> = (0..4)
            .map(|s| cl.sim.node(s).fragments().snapshot())
            .collect();
        let m = cl.stats().txn;
        (m.committed(), frags, m.checkpoint_fallbacks())
    };
    let clean = run(None);
    let mut fallbacks = 0;
    for slot in [0u8, 1] {
        let rotten = run(Some(slot));
        assert_eq!(clean.0, rotten.0, "slot {slot}: commit counts must match");
        assert_eq!(clean.1, rotten.1, "slot {slot}: final fragments must match");
        fallbacks += rotten.2;
    }
    // Exactly one of the two slots held the newest generation at crash
    // time; rotting *that* one must have forced a fallback.
    assert!(
        fallbacks >= 1,
        "corrupting the newest slot must force a generation fallback"
    );
}

/// Any single flipped byte in the stable log region is caught, blamed on
/// the exact record whose frame holds it, and salvaged around — never
/// silently decoded into wrong state.
mod bit_flip {
    use dvp::storage::{
        DecodeError, Lsn, Record, RecordReader, RecordWriter, SalvageOutcome, StableLog,
    };
    use proptest::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    struct R(u64);
    impl Record for R {
        fn encode(&self, w: &mut RecordWriter) {
            w.u64(self.0);
        }
        fn decode(r: &mut RecordReader) -> Result<Self, DecodeError> {
            Ok(R(r.u64()?))
        }
    }

    // Frame layout: len(4) + crc(4) + lsn(8) + u64 payload(8).
    const FRAME: usize = 24;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn any_single_byte_flip_is_blamed_on_the_exact_lsn(
            n in 1usize..24,
            frac in 0.0f64..1.0,
        ) {
            let mut log = StableLog::new();
            for i in 0..n {
                log.append_force(R(i as u64));
            }
            let len = log.stable_image_len();
            prop_assert_eq!(len, n * FRAME);
            let offset = (((len - 1) as f64) * frac) as usize;
            prop_assert_eq!(log.corrupt_stable(offset..offset + 1), 1);
            let bad = offset / FRAME; // index of the record whose frame rotted

            match log.recover_salvage() {
                SalvageOutcome::MediaDamage { entries, dropped, report } => {
                    // The salvaged prefix is exactly the records before the
                    // flip, each intact...
                    prop_assert_eq!(entries.len(), bad);
                    for (i, (lsn, r)) in entries.iter().enumerate() {
                        prop_assert_eq!(*lsn, Lsn(i as u64));
                        prop_assert_eq!(r.0, i as u64);
                    }
                    // ...and the report names the exact first corrupt LSN
                    // and everything lost behind it.
                    prop_assert_eq!(report.first_bad_lsn, Lsn(bad as u64));
                    prop_assert_eq!(report.records_lost, (n - bad) as u64);
                    prop_assert_eq!(dropped.len(), n - bad);
                }
                other => prop_assert!(false, "flip at byte {offset} undetected: {other:?}"),
            }
            // Salvage repaired the image down to the intact prefix: a second
            // recovery is clean and returns exactly that prefix.
            match log.recover_salvage() {
                SalvageOutcome::Clean { entries } => prop_assert_eq!(entries.len(), bad),
                other => prop_assert!(false, "salvage must repair the image: {other:?}"),
            }
        }
    }
}

/// All three crashpoints fire at most once (one-shot semantics) and the
/// cluster stays conservative through each.
#[test]
fn every_crashpoint_fires_once_and_recovery_holds() {
    for point in [
        Crashpoint::AfterAppendBeforeForce,
        Crashpoint::AfterForceBeforeSend,
        Crashpoint::MidCheckpoint,
    ] {
        // Tight quotas (15 seats/site) + skewed demand exhaust the hot
        // site fast, so solicitations and donations actually flow —
        // otherwise AfterForceBeforeSend would never be reachable.
        let w = AirlineWorkload {
            n_sites: 4,
            flights: 2,
            seats_per_flight: 60,
            txns: 80,
            site_skew: 1.5,
            mix: (0.8, 0.2, 0.0, 0.0),
            ..Default::default()
        }
        .generate(21);
        // Site 0 is the hot (soliciting) site under skew; site 1 both
        // commits and donates, so every crashpoint is reachable there.
        let mut cfg = ClusterConfig::new(4, w.catalog.clone());
        cfg.scripts = w.scripts.clone();
        cfg.seed = 21;
        cfg.site.checkpoint_every = Some(6);
        cfg.site.inject = InjectConfig::crashpoint_at(1, point);
        cfg.faults = FaultPlan::none().recover(ms(300), 1);
        let mut cl = Cluster::build(cfg);
        cl.run_until(ms(60_000));
        cl.auditor().check_conservation().unwrap();
        let m = cl.stats().txn;
        assert_eq!(m.crashpoint_trips(), 1, "{point:?} must fire exactly once");
        assert_eq!(m.sites[1].recoveries, 1, "{point:?}: victim recovers");
    }
}
