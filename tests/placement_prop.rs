//! Placement-subsystem property tests: **availability hints are pure
//! gossip, never load-bearing**.
//!
//! The adaptive subsystem's contract (DESIGN.md §4h) is that hints may
//! only *steer* the `Fanout::Hinted` target choice — they must never
//! change what commits, what aborts, or what any safety oracle sees.
//! Two properties pin that down, each run through the [`HintChaos`]
//! knob (drop every hint / apply every hint twice / treat every hint as
//! expired):
//!
//! 1. With a fan-out that does not consult hints (`Fanout::All`), every
//!    chaos mode produces an *identical* run — same commits, aborts,
//!    requests, frames. Hints with no steering role are inert.
//! 2. With `Fanout::Hinted`, chaos may change message counts (that is
//!    its job) but conservation and read exactness hold under every
//!    mode, including over a lossy network.
//!
//! The third leg of the story — that the *disabled* path is
//! byte-identical to the pre-PR golden trace — is pinned by
//! `tests/obs_trace.rs`, whose golden files were captured before the
//! placement subsystem existed and run against today's default
//! (`Placement::Reactive`) configuration.

use dvp::prelude::*;
use dvp::workloads::AirlineWorkload;
use proptest::prelude::*;

/// Run one adaptive-placement cluster to quiescence, assert the safety
/// oracles, and return the outcome fingerprint.
fn run(
    seed: u64,
    txns: usize,
    loss: f64,
    fanout: Fanout,
    chaos: HintChaos,
) -> (u64, u64, u64, u64) {
    let w = AirlineWorkload {
        n_sites: 4,
        flights: 2,
        seats_per_flight: 400,
        txns,
        site_skew: 1.5,
        ..Default::default()
    }
    .generate(seed);
    let mut cfg = ClusterConfig::new(w.scripts.len(), w.catalog.clone());
    cfg.scripts = w.scripts.clone();
    cfg.seed = seed;
    cfg.site.placement = Placement::Adaptive(AdaptivePlacement {
        fanout,
        chaos,
        ..Default::default()
    });
    cfg.net = if loss > 0.0 {
        NetworkConfig::lossy(loss)
    } else {
        NetworkConfig::reliable()
    };
    let mut cl = Cluster::build(cfg);
    cl.run_to_quiescence();
    cl.auditor().check_conservation().unwrap();
    let stats = cl.stats();
    let m = &stats.txn;
    cl.auditor()
        .check_reads(m)
        .expect("committed reads must be exact under every chaos mode");
    (
        m.committed(),
        m.aborted(),
        m.requests_sent(),
        cl.sim.stats().frames_sent,
    )
}

const CHAOS: [HintChaos; 4] = [
    HintChaos::None,
    HintChaos::Drop,
    HintChaos::Duplicate,
    HintChaos::Stale,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property 1: when hints are not steering the fan-out, mangling
    /// them changes *nothing* — not one commit, abort, request, or
    /// frame. This is what makes the piggybacked gossip safe to ship on
    /// every datagram: a site that drops, duplicates, or expires every
    /// hint runs the exact same protocol.
    #[test]
    fn hints_are_inert_when_not_steering(
        seed in any::<u64>(),
        txns in 10usize..50,
    ) {
        let base = run(seed, txns, 0.0, Fanout::All, HintChaos::None);
        for chaos in [HintChaos::Drop, HintChaos::Duplicate, HintChaos::Stale] {
            let got = run(seed, txns, 0.0, Fanout::All, chaos);
            prop_assert_eq!(base, got, "chaos {:?} changed the run", chaos);
        }
    }

    /// Property 2: when hints *do* steer (`Fanout::Hinted`), adversarial
    /// hint handling may cost messages or timeouts but can never break
    /// conservation or read exactness — asserted inside `run` for every
    /// chaos mode, with and without loss.
    #[test]
    fn chaotic_hints_cannot_break_safety(
        seed in any::<u64>(),
        txns in 10usize..50,
        loss in 0.0f64..0.3,
    ) {
        for chaos in CHAOS {
            run(seed, txns, loss, Fanout::Hinted, chaos);
        }
    }
}

/// The disabled path really is disabled: a default (`Placement::
/// Reactive`) cluster neither sends hints nor records hinted
/// solicitations, so the adaptive subsystem cannot leak into runs that
/// did not opt in.
#[test]
fn reactive_path_carries_no_hints() {
    let w = AirlineWorkload {
        n_sites: 4,
        flights: 2,
        seats_per_flight: 400,
        txns: 60,
        site_skew: 1.5,
        ..Default::default()
    }
    .generate(7);
    let mut cfg = ClusterConfig::new(w.scripts.len(), w.catalog.clone());
    cfg.scripts = w.scripts.clone();
    cfg.seed = 7;
    let mut cl = Cluster::build(cfg);
    cl.run_to_quiescence();
    let stats = cl.stats();
    assert_eq!(stats.placement.hints_sent, 0, "no hints on the wire");
    assert_eq!(stats.placement.hinted_solicits, 0);
    assert_eq!(stats.placement.hint_hits, 0);
    assert_eq!(stats.placement.rebalances, 0, "no rebalancer by default");
    assert!(stats.txn.committed() > 0, "the workload actually ran");
}

/// And the enabled path actually engages end to end: on a solicitation-
/// heavy workload, hints ride datagrams, steer solicitations, and pay
/// off — the counters the benchmark columns are built from are live.
#[test]
fn adaptive_path_hints_flow_and_hit() {
    let w = AirlineWorkload {
        n_sites: 4,
        flights: 2,
        seats_per_flight: 300,
        txns: 150,
        site_skew: 2.0,
        mix: (0.9, 0.1, 0.0, 0.0),
        ..Default::default()
    }
    .generate(2);
    let mut cfg = ClusterConfig::new(w.scripts.len(), w.catalog.clone());
    cfg.scripts = w.scripts.clone();
    cfg.seed = 2;
    cfg.site.placement = Placement::adaptive();
    let mut cl = Cluster::build(cfg);
    cl.run_to_quiescence();
    cl.auditor().check_conservation().unwrap();
    let stats = cl.stats();
    assert!(stats.placement.hints_sent > 0, "hints piggyback on Vms");
    assert!(
        stats.placement.hinted_solicits > 0,
        "some solicitations are hint-directed"
    );
    assert!(
        stats.placement.hint_hits > 0,
        "hint-directed solicitations pay off"
    );
}
