//! Pinned regression scenarios: bugs the property tests once caught, kept
//! as deterministic tests so they can never come back.

use dvp::prelude::*;
use dvp::workloads::InventoryWorkload;

/// **Stale lease-timer release.**
///
/// Found by `tests/serializability.rs` (proptest seed
/// `17429861443655363711`): a donor's read-lease expiry timer was not
/// cancelled when the lease was released early by the reader's
/// `ReleaseLease` message. When a *second* read later leased the same
/// item at the same donor, the stale timer from the first lease fired and
/// released the second lease. A local restock then slipped in mid-read on
/// the fast path, and the committed read missed its value (returned 976,
/// truth 1026).
///
/// The fix tracks the live lease timer per item and ignores firings whose
/// `TimerId` does not match.
#[test]
fn stale_lease_timer_cannot_release_a_newer_lease() {
    let seed = 17429861443655363711u64;
    let w = InventoryWorkload {
        txns: 50,
        ..Default::default()
    }
    .generate(seed);
    let mut cfg = ClusterConfig::new(w.scripts.len(), w.catalog.clone());
    cfg.scripts = w.scripts.clone();
    cfg.seed = seed;
    cfg.site.conc = ConcMode::Conc2;
    cfg.net = NetworkConfig::synchronous_ordered(SimDuration::millis(2));
    let mut cl = Cluster::build(cfg);
    cl.run_until(SimTime::ZERO + SimDuration::secs(120));
    cl.auditor().check_conservation().unwrap();
    let m = cl.stats().txn;
    cl.auditor()
        .check_reads(&m)
        .expect("every committed read must be exact");
}

/// **The read-drain gate is load-bearing.**
///
/// Section 5 requires a donor with outstanding Vms for an item to refuse
/// read solicitations ("the fact that no outstanding Vm is there assures
/// that the complete Π⁻¹(d) is procured"). This test shows the rule is
/// not mere caution: with the gate ablated away, a committed read
/// silently misses the value riding a slow in-flight Vm.
///
/// Scenario (3 sites, item split 34/33/33, link 2→1 delayed 300ms):
///  t=1ms   site 1 reserves 50 — deficit 17 — solicits site 2 (fanout 1);
///          site 2 ships a 17-unit Vm onto the slow link and now has an
///          outstanding Vm for the item;
///  t=51ms  site 1's reservation times out and aborts (Vm still in air);
///  t=60ms  site 0 runs a full-value read.
/// With the gate: site 2 refuses, the read aborts — no wrong answer.
/// Without: site 2 donates its remaining 16, the read commits 34+33+16=83
/// while the truth is 100 (17 still in flight toward site 1).
#[test]
fn ablating_the_read_drain_gate_breaks_read_exactness() {
    fn ms(n: u64) -> SimTime {
        SimTime::ZERO + SimDuration::millis(n)
    }
    let run = |skip_gate: bool| {
        let mut catalog = Catalog::new();
        let item = catalog.add("pool", 100, Split::Even); // 34/33/33
        let mut cfg = ClusterConfig::new(3, catalog);
        cfg.site.placement = Placement::Reactive(ReactivePlacement {
            fanout: Fanout::One,
            ..Default::default()
        });
        cfg.site.unsafe_skip_read_drain_gate = skip_gate;
        // The 2→1 data path crawls; everything else is normal, so the
        // Vm's acks and retransmissions do not resolve it quickly.
        cfg.net = NetworkConfig::reliable().with_link(
            2,
            1,
            LinkConfig {
                delay_min: SimDuration::millis(300),
                delay_max: SimDuration::millis(300),
                loss: 0.0,
                duplicate: 0.0,
            },
        );
        let cfg = cfg
            .at(1, ms(1), TxnSpec::reserve(item, 50))
            .at(0, ms(60), TxnSpec::read(item));
        let mut cl = Cluster::build(cfg);
        cl.run_until(ms(5_000));
        cl.auditor().check_conservation().unwrap();
        let m = cl.stats().txn;
        (m.clone(), cl.auditor().check_reads(&m).is_ok())
    };

    // With the gate (the paper's rule): the read cannot certify
    // quiescence and aborts; whatever committed is exact.
    let (m_safe, reads_ok) = run(false);
    assert!(reads_ok, "with the gate every committed read is exact");
    let read_committed = m_safe
        .global_commit_order()
        .iter()
        .any(|e| !e.reads.is_empty());
    assert!(
        !read_committed,
        "the read must abort while value is in flight"
    );

    // Without the gate: the read commits a wrong total.
    let (m_unsafe, reads_ok) = run(true);
    let read_vals: Vec<u64> = m_unsafe
        .global_commit_order()
        .iter()
        .flat_map(|e| e.reads.iter().map(|&(_, v)| v))
        .collect();
    assert_eq!(
        read_vals,
        vec![83],
        "the gateless read misses in-flight value"
    );
    assert!(
        !reads_ok,
        "check_reads must flag the miss — the §5 rule is load-bearing"
    );
}

/// **`Fanout::One` must not round-robin into a known-dead donor.**
///
/// Pre-fix, the single-target rotation blindly included every peer, so a
/// site soliciting near a crashed donor burned a full transaction
/// timeout each time the pointer came back around — under Conc1's
/// silent declines there is no nack to learn from, only the timeout.
/// The fix marks the target of an unanswered single-target solicitation
/// *suspect* for two timeout spans and skips suspects in both the
/// round-robin and hint-directed picks (any message from the peer
/// clears the suspicion).
///
/// Pinned sequence (3 sites, 1000 units each, site 2 crashed, fanout
/// one, rotation visits 1, 2, 1, 2, ...):
///   t1 drains site 0 and solicits site 1   → commit;
///   t2 rotates to dead site 2              → timeout abort, 2 suspect;
///   t3 rotates back to site 1              → commit;
///   t4 would rotate to site 2 again — the suspicion redirects it to
///      site 1 → commit. (Pre-fix: a second timeout abort.)
#[test]
fn fanout_one_skips_a_suspect_donor_while_the_suspicion_is_fresh() {
    fn ms(n: u64) -> SimTime {
        SimTime::ZERO + SimDuration::millis(n)
    }
    let mut catalog = Catalog::new();
    let item = catalog.add("pool", 3_000, Split::Even); // 1000 per site
    let mut cfg = ClusterConfig::new(3, catalog);
    cfg.site.placement = Placement::Reactive(ReactivePlacement {
        fanout: Fanout::One,
        refill: RefillPolicy::DemandExact,
        rebalance: None,
    });
    cfg.faults = FaultPlan::none().crash(ms(0), 2);
    let cfg = cfg
        .at(0, ms(1), TxnSpec::reserve(item, 1_050)) // solicits site 1
        .at(0, ms(70), TxnSpec::reserve(item, 100)) // solicits dead site 2
        .at(0, ms(140), TxnSpec::reserve(item, 100)) // rotates to site 1
        .at(0, ms(180), TxnSpec::reserve(item, 100)); // 2 again — must skip
    let mut cl = Cluster::build(cfg);
    cl.run_to_quiescence();
    cl.auditor().check_conservation().unwrap();
    let m = cl.stats().txn;
    assert_eq!(
        m.aborted_for(AbortReason::Timeout),
        1,
        "only the first probe of the dead donor may time out"
    );
    assert_eq!(m.committed(), 3, "t1, t3 and t4 all commit");
    assert_eq!(
        m.sites[2].donations, 0,
        "the crashed site never donates anything"
    );
}
