//! Property tests for the Virtual Message layer: under an adversarial
//! network (arbitrary loss, duplication, and batching of frames), every
//! created Vm is accepted exactly once and eventually completes, and the
//! total transferred amount is conserved.

use bytes::Bytes;
use dvp::vmsg::{Frame, Receipt, VmConfig, VmEndpoint};
use proptest::prelude::*;

/// One adversarial step applied to the channel between two endpoints.
#[derive(Clone, Debug)]
enum Step {
    /// Sender mints a Vm carrying `amount`.
    Create(u8),
    /// Deliver up to `n` queued frames sender→receiver, dropping each
    /// with the given mask bit and duplicating with the dup mask bit.
    DeliverToReceiver { n: u8, drop_mask: u8, dup_mask: u8 },
    /// Deliver queued frames receiver→sender (acks), with loss.
    DeliverToSender { n: u8, drop_mask: u8 },
    /// Sender retransmission timer fires.
    Tick,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (1u8..20).prop_map(Step::Create),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(n, drop_mask, dup_mask)| {
            Step::DeliverToReceiver {
                n: n % 8,
                drop_mask,
                dup_mask,
            }
        }),
        (any::<u8>(), any::<u8>()).prop_map(|(n, drop_mask)| Step::DeliverToSender {
            n: n % 8,
            drop_mask
        }),
        Just(Step::Tick),
    ]
}

#[derive(Default)]
struct Wire {
    to_receiver: Vec<Frame>,
    to_sender: Vec<Frame>,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn adversarial_schedules_never_lose_or_double_value(
        steps in proptest::collection::vec(step_strategy(), 1..120)
    ) {
        let cfg = VmConfig { window: 4, eager_acks: true };
        let mut sender = VmEndpoint::new(0, cfg);
        let mut receiver = VmEndpoint::new(1, cfg);
        let mut wire = Wire::default();
        let mut created_total: u64 = 0;
        let mut accepted_total: u64 = 0;

        let run_step = |step: &Step,
                            sender: &mut VmEndpoint,
                            receiver: &mut VmEndpoint,
                            wire: &mut Wire,
                            created_total: &mut u64,
                            accepted_total: &mut u64| {
            match step {
                Step::Create(amount) => {
                    let _op = sender.create(1, Bytes::from(vec![*amount]));
                    *created_total += *amount as u64;
                }
                Step::DeliverToReceiver { n, drop_mask, dup_mask } => {
                    for (to, f) in sender.drain_outbox() {
                        assert_eq!(to, 1);
                        wire.to_receiver.push(f);
                    }
                    for k in 0..(*n as usize).min(wire.to_receiver.len()) {
                        if wire.to_receiver.is_empty() { break; }
                        let f = wire.to_receiver.remove(0);
                        let _ = k;
                        let copies = if dup_mask & (1 << (k % 8)) != 0 { 2 } else { 1 };
                        if drop_mask & (1 << (k % 8)) != 0 {
                            continue; // lost
                        }
                        for _ in 0..copies {
                            if let Receipt::Fresh { seq, payload } = receiver.on_frame(0, f.clone()) {
                                *accepted_total += payload[0] as u64;
                                receiver.commit_accept(0, seq);
                            }
                        }
                    }
                }
                Step::DeliverToSender { n, drop_mask } => {
                    for (to, f) in receiver.drain_outbox() {
                        assert_eq!(to, 0);
                        wire.to_sender.push(f);
                    }
                    for k in 0..(*n as usize) {
                        if wire.to_sender.is_empty() { break; }
                        let f = wire.to_sender.remove(0);
                        if drop_mask & (1 << (k % 8)) != 0 {
                            continue;
                        }
                        sender.on_frame(1, f);
                    }
                }
                Step::Tick => sender.tick(),
            }
        };

        for step in &steps {
            run_step(step, &mut sender, &mut receiver, &mut wire,
                     &mut created_total, &mut accepted_total);
        }

        // Invariant during the run: never accept more than was created.
        prop_assert!(accepted_total <= created_total);

        // Drain to quiescence over a reliable network: everything created
        // must complete ("a Vm is never lost").
        for _ in 0..2048 {
            if !sender.has_outstanding() && wire.to_receiver.is_empty() && wire.to_sender.is_empty() {
                break;
            }
            run_step(&Step::Tick, &mut sender, &mut receiver, &mut wire,
                     &mut created_total, &mut accepted_total);
            run_step(&Step::DeliverToReceiver { n: 7, drop_mask: 0, dup_mask: 0 },
                     &mut sender, &mut receiver, &mut wire,
                     &mut created_total, &mut accepted_total);
            run_step(&Step::DeliverToSender { n: 7, drop_mask: 0 },
                     &mut sender, &mut receiver, &mut wire,
                     &mut created_total, &mut accepted_total);
        }
        prop_assert!(!sender.has_outstanding(), "all Vms must complete");
        prop_assert_eq!(accepted_total, created_total,
            "exactly-once acceptance of every created amount");
        prop_assert_eq!(sender.stats().created, receiver.stats().accepted);
    }

    /// Crash-and-replay at arbitrary points preserves exactly-once
    /// semantics: the receiver's durable cursor dedups retransmissions,
    /// the sender's durable Created ops resume retransmission.
    #[test]
    fn crash_replay_preserves_exactly_once(
        amounts in proptest::collection::vec(1u8..20, 1..12),
        crash_sender_at in 0usize..12,
        crash_receiver_at in 0usize..12,
    ) {
        let cfg = VmConfig { window: 8, eager_acks: true };
        let mut sender = VmEndpoint::new(0, cfg);
        let mut receiver = VmEndpoint::new(1, cfg);
        let mut sender_log = Vec::new();   // durable Created ops
        let mut receiver_log = Vec::new(); // durable Accepted ops
        let mut accepted_total = 0u64;
        let created_total: u64 = amounts.iter().map(|&a| a as u64).sum();

        for (i, &a) in amounts.iter().enumerate() {
            sender_log.push(sender.create(1, Bytes::from(vec![a])));

            if i == crash_sender_at {
                sender.crash_reset();
                for op in &sender_log {
                    sender.replay(op);
                }
            }
            if i == crash_receiver_at {
                receiver.crash_reset();
                for op in &receiver_log {
                    receiver.replay(op);
                }
            }

            // A lossy delivery round (arbitrarily drop every other frame).
            for (k, (_, f)) in sender.drain_outbox().into_iter().enumerate() {
                if k % 2 == 0 {
                    if let Receipt::Fresh { seq, payload } = receiver.on_frame(0, f) {
                        accepted_total += payload[0] as u64;
                        receiver_log.push(receiver.commit_accept(0, seq));
                    }
                }
            }
            for (_, f) in receiver.drain_outbox() {
                sender.on_frame(1, f);
            }
        }

        // Reliable drain to quiescence.
        for _ in 0..1024 {
            if !sender.has_outstanding() {
                break;
            }
            sender.tick();
            for (_, f) in sender.drain_outbox() {
                if let Receipt::Fresh { seq, payload } = receiver.on_frame(0, f) {
                    accepted_total += payload[0] as u64;
                    receiver_log.push(receiver.commit_accept(0, seq));
                }
            }
            for (_, f) in receiver.drain_outbox() {
                sender.on_frame(1, f);
            }
        }
        prop_assert!(!sender.has_outstanding());
        prop_assert_eq!(accepted_total, created_total);
    }
}
