//! Property tests for the Virtual Message layer: under an adversarial
//! network (arbitrary loss, duplication, and batching of frames), every
//! created Vm is accepted exactly once and eventually completes, and the
//! total transferred amount is conserved.

use bytes::Bytes;
use dvp::vmsg::{Frame, Receipt, VmConfig, VmEndpoint, WireDatagram};
use proptest::prelude::*;

/// One adversarial step applied to the channel between two endpoints.
#[derive(Clone, Debug)]
enum Step {
    /// Sender mints a Vm carrying `amount`.
    Create(u8),
    /// Deliver up to `n` queued frames sender→receiver, dropping each
    /// with the given mask bit and duplicating with the dup mask bit.
    DeliverToReceiver { n: u8, drop_mask: u8, dup_mask: u8 },
    /// Deliver queued frames receiver→sender (acks), with loss.
    DeliverToSender { n: u8, drop_mask: u8 },
    /// Sender retransmission timer fires.
    Tick,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (1u8..20).prop_map(Step::Create),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(n, drop_mask, dup_mask)| {
            Step::DeliverToReceiver {
                n: n % 8,
                drop_mask,
                dup_mask,
            }
        }),
        (any::<u8>(), any::<u8>()).prop_map(|(n, drop_mask)| Step::DeliverToSender {
            n: n % 8,
            drop_mask
        }),
        Just(Step::Tick),
    ]
}

#[derive(Default)]
struct Wire {
    to_receiver: Vec<Frame>,
    to_sender: Vec<Frame>,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn adversarial_schedules_never_lose_or_double_value(
        steps in proptest::collection::vec(step_strategy(), 1..120)
    ) {
        let cfg = VmConfig { window: 4, eager_acks: true, ..VmConfig::default() };
        let mut sender = VmEndpoint::new(0, cfg);
        let mut receiver = VmEndpoint::new(1, cfg);
        let mut wire = Wire::default();
        let mut created_total: u64 = 0;
        let mut accepted_total: u64 = 0;

        let run_step = |step: &Step,
                            sender: &mut VmEndpoint,
                            receiver: &mut VmEndpoint,
                            wire: &mut Wire,
                            created_total: &mut u64,
                            accepted_total: &mut u64| {
            match step {
                Step::Create(amount) => {
                    let _op = sender.create(1, Bytes::from(vec![*amount]));
                    *created_total += *amount as u64;
                }
                Step::DeliverToReceiver { n, drop_mask, dup_mask } => {
                    for (to, f) in sender.drain_outbox() {
                        assert_eq!(to, 1);
                        wire.to_receiver.push(f);
                    }
                    for k in 0..(*n as usize).min(wire.to_receiver.len()) {
                        if wire.to_receiver.is_empty() { break; }
                        let f = wire.to_receiver.remove(0);
                        let _ = k;
                        let copies = if dup_mask & (1 << (k % 8)) != 0 { 2 } else { 1 };
                        if drop_mask & (1 << (k % 8)) != 0 {
                            continue; // lost
                        }
                        for _ in 0..copies {
                            if let Receipt::Fresh { seq, payload } = receiver.on_frame(0, f.clone()) {
                                *accepted_total += payload[0] as u64;
                                receiver.commit_accept(0, seq);
                            }
                        }
                    }
                }
                Step::DeliverToSender { n, drop_mask } => {
                    for (to, f) in receiver.drain_outbox() {
                        assert_eq!(to, 0);
                        wire.to_sender.push(f);
                    }
                    for k in 0..(*n as usize) {
                        if wire.to_sender.is_empty() { break; }
                        let f = wire.to_sender.remove(0);
                        if drop_mask & (1 << (k % 8)) != 0 {
                            continue;
                        }
                        sender.on_frame(1, f);
                    }
                }
                Step::Tick => sender.tick(),
            }
        };

        for step in &steps {
            run_step(step, &mut sender, &mut receiver, &mut wire,
                     &mut created_total, &mut accepted_total);
        }

        // Invariant during the run: never accept more than was created.
        prop_assert!(accepted_total <= created_total);

        // Drain to quiescence over a reliable network: everything created
        // must complete ("a Vm is never lost").
        for _ in 0..2048 {
            if !sender.has_outstanding() && wire.to_receiver.is_empty() && wire.to_sender.is_empty() {
                break;
            }
            run_step(&Step::Tick, &mut sender, &mut receiver, &mut wire,
                     &mut created_total, &mut accepted_total);
            run_step(&Step::DeliverToReceiver { n: 7, drop_mask: 0, dup_mask: 0 },
                     &mut sender, &mut receiver, &mut wire,
                     &mut created_total, &mut accepted_total);
            run_step(&Step::DeliverToSender { n: 7, drop_mask: 0 },
                     &mut sender, &mut receiver, &mut wire,
                     &mut created_total, &mut accepted_total);
        }
        prop_assert!(!sender.has_outstanding(), "all Vms must complete");
        prop_assert_eq!(accepted_total, created_total,
            "exactly-once acceptance of every created amount");
        prop_assert_eq!(sender.stats().created, receiver.stats().accepted);
    }

    /// Crash-and-replay at arbitrary points preserves exactly-once
    /// semantics: the receiver's durable cursor dedups retransmissions,
    /// the sender's durable Created ops resume retransmission.
    #[test]
    fn crash_replay_preserves_exactly_once(
        amounts in proptest::collection::vec(1u8..20, 1..12),
        crash_sender_at in 0usize..12,
        crash_receiver_at in 0usize..12,
    ) {
        let cfg = VmConfig { window: 8, eager_acks: true, ..VmConfig::default() };
        let mut sender = VmEndpoint::new(0, cfg);
        let mut receiver = VmEndpoint::new(1, cfg);
        let mut sender_log = Vec::new();   // durable Created ops
        let mut receiver_log = Vec::new(); // durable Accepted ops
        let mut accepted_total = 0u64;
        let created_total: u64 = amounts.iter().map(|&a| a as u64).sum();

        for (i, &a) in amounts.iter().enumerate() {
            sender_log.push(sender.create(1, Bytes::from(vec![a])));

            if i == crash_sender_at {
                sender.crash_reset();
                for op in &sender_log {
                    sender.replay(op);
                }
            }
            if i == crash_receiver_at {
                receiver.crash_reset();
                for op in &receiver_log {
                    receiver.replay(op);
                }
            }

            // A lossy delivery round (arbitrarily drop every other frame).
            for (k, (_, f)) in sender.drain_outbox().into_iter().enumerate() {
                if k % 2 == 0 {
                    if let Receipt::Fresh { seq, payload } = receiver.on_frame(0, f) {
                        accepted_total += payload[0] as u64;
                        receiver_log.push(receiver.commit_accept(0, seq));
                    }
                }
            }
            for (_, f) in receiver.drain_outbox() {
                sender.on_frame(1, f);
            }
        }

        // Reliable drain to quiescence.
        for _ in 0..1024 {
            if !sender.has_outstanding() {
                break;
            }
            sender.tick();
            for (_, f) in sender.drain_outbox() {
                if let Receipt::Fresh { seq, payload } = receiver.on_frame(0, f) {
                    accepted_total += payload[0] as u64;
                    receiver_log.push(receiver.commit_accept(0, seq));
                }
            }
            for (_, f) in receiver.drain_outbox() {
                sender.on_frame(1, f);
            }
        }
        prop_assert!(!sender.has_outstanding());
        prop_assert_eq!(accepted_total, created_total);
    }

    /// Datagram-granularity adversary: with link-level coalescing the
    /// unit of loss, duplication, and reordering is the *datagram* (one
    /// encoded frame batch), not the frame. Whatever the schedule, the
    /// receiver must accept each Vm exactly once, in dense per-channel
    /// FIFO order, and every fresh acceptance must land inside the
    /// oracle window `(acked, created]` of the sender's channel state.
    /// Runs both coalesced (wire carries encoded [`WireDatagram`]s) and
    /// non-coalesced (wire carries bare frames) for the same schedule
    /// shape.
    #[test]
    fn datagram_adversary_preserves_fifo_and_window(
        steps in proptest::collection::vec(dgram_step_strategy(), 1..100),
        coalesce in any::<bool>(),
    ) {
        let cfg = VmConfig { window: 4, eager_acks: true, coalesce, ..VmConfig::default() };
        let mut sender = VmEndpoint::new(0, cfg);
        let mut receiver = VmEndpoint::new(1, cfg);
        // The wire: each element is one transmission unit.
        let mut to_receiver: Vec<Unit> = Vec::new();
        let mut to_sender: Vec<Unit> = Vec::new();
        // created/accepted value totals and the FIFO/window oracle.
        let mut tally = Tally::default();

        // Drain one side's queued traffic onto the wire as units.
        fn drain(ep: &mut VmEndpoint, expect_to: usize, wire: &mut Vec<Unit>, coalesce: bool) {
            if coalesce {
                let mut dgrams = Vec::new();
                ep.drain_datagrams_into(0, &mut dgrams);
                for (to, wd) in dgrams {
                    assert_eq!(to, expect_to);
                    wire.push(Unit::Dgram(wd));
                }
            } else {
                for (to, f) in ep.drain_outbox() {
                    assert_eq!(to, expect_to);
                    wire.push(Unit::Frame(f));
                }
            }
        }

        // Deliver one unit's frames into an endpoint; returns the frames.
        fn unpack(ep: &mut VmEndpoint, unit: &Unit) -> Vec<Frame> {
            match unit {
                Unit::Dgram(wd) => {
                    let d = wd.decode();
                    assert_ne!(d.id, 0, "coalesced datagrams get real ids");
                    ep.begin_datagram(d.id);
                    d.frames
                }
                Unit::Frame(f) => vec![f.clone()],
            }
        }

        let run = |step: &DStep,
                   sender: &mut VmEndpoint,
                   receiver: &mut VmEndpoint,
                   to_receiver: &mut Vec<Unit>,
                   to_sender: &mut Vec<Unit>,
                   t: &mut Tally| {
            match step {
                DStep::Create(amount) => {
                    let _op = sender.create(1, Bytes::from(vec![*amount]));
                    t.created_total += *amount as u64;
                    t.created_count += 1;
                }
                DStep::Tick => sender.tick(),
                DStep::FlushData => drain(sender, 1, to_receiver, coalesce),
                DStep::FlushAcks => {
                    // The delayed-ack timer fires: owed acks go standalone.
                    if coalesce {
                        receiver.flush_owed_ack(0);
                    }
                    drain(receiver, 0, to_sender, coalesce);
                }
                DStep::DeliverData { n, drop_mask, dup_mask, from_back } => {
                    for k in 0..(*n as usize) {
                        if to_receiver.is_empty() { break; }
                        // Reorder by taking from either end of the wire.
                        let unit = if *from_back & (1 << (k % 8)) != 0 {
                            to_receiver.pop().unwrap()
                        } else {
                            to_receiver.remove(0)
                        };
                        if drop_mask & (1 << (k % 8)) != 0 {
                            continue; // the whole datagram is lost
                        }
                        let copies = if dup_mask & (1 << (k % 8)) != 0 { 2 } else { 1 };
                        for _ in 0..copies {
                            for f in unpack(receiver, &unit) {
                                if let Receipt::Fresh { seq, payload } = receiver.on_frame(0, f) {
                                    // Per-channel FIFO: dense, in order,
                                    // exactly once.
                                    assert_eq!(seq, t.last_accepted + 1,
                                        "fresh acceptance out of FIFO order");
                                    // Oracle window (acked, created].
                                    assert!(seq <= t.created_count,
                                        "accepted a seq never created");
                                    t.last_accepted = seq;
                                    t.accepted_total += payload[0] as u64;
                                    receiver.commit_accept(0, seq);
                                }
                            }
                        }
                    }
                }
                DStep::DeliverAcks { n, drop_mask } => {
                    for k in 0..(*n as usize) {
                        if to_sender.is_empty() { break; }
                        let unit = to_sender.remove(0);
                        if drop_mask & (1 << (k % 8)) != 0 {
                            continue;
                        }
                        for f in unpack(sender, &unit) {
                            // Acks carried by the frame must never exceed
                            // what the receiver durably accepted.
                            assert!(f.ack() <= t.last_accepted, "ack beyond acceptance");
                            sender.on_frame(1, f);
                        }
                    }
                }
            }
        };

        for step in &steps {
            run(step, &mut sender, &mut receiver, &mut to_receiver, &mut to_sender, &mut tally);
        }
        prop_assert!(tally.accepted_total <= tally.created_total);

        // Reliable drain to quiescence: two ticks per round (the
        // coalescing retransmit gate gives freshly sent frames one tick
        // of grace).
        for _ in 0..2048 {
            if !sender.has_outstanding() && to_receiver.is_empty() && to_sender.is_empty() {
                break;
            }
            for s in [
                DStep::Tick,
                DStep::Tick,
                DStep::FlushData,
                DStep::DeliverData { n: 16, drop_mask: 0, dup_mask: 0, from_back: 0 },
                DStep::FlushAcks,
                DStep::DeliverAcks { n: 16, drop_mask: 0 },
            ] {
                run(&s, &mut sender, &mut receiver, &mut to_receiver, &mut to_sender, &mut tally);
            }
        }
        prop_assert!(!sender.has_outstanding(), "all Vms must complete");
        prop_assert_eq!(tally.accepted_total, tally.created_total,
            "exactly-once acceptance of every created amount");
        prop_assert_eq!(sender.stats().created, receiver.stats().accepted);
        if coalesce && tally.created_count > 0 {
            prop_assert!(sender.stats().datagrams_sent > 0);
        }
    }
}

/// Running oracle for the datagram adversary test.
#[derive(Default)]
struct Tally {
    created_total: u64,
    accepted_total: u64,
    /// Vms created on the 0→1 channel (the upper window bound).
    created_count: u64,
    /// Last seq accepted fresh (the FIFO cursor and lower ack bound).
    last_accepted: u64,
}

/// One transmission unit on the adversarial wire: an encoded datagram
/// (coalesced mode) or a bare frame (legacy mode).
#[derive(Clone, Debug)]
enum Unit {
    Dgram(WireDatagram),
    Frame(Frame),
}

/// One adversarial step at datagram granularity.
#[derive(Clone, Debug)]
enum DStep {
    /// Sender mints a Vm carrying `amount`.
    Create(u8),
    /// Sender retransmission timer fires.
    Tick,
    /// Sender's flush boundary: queued frames leave as datagrams.
    FlushData,
    /// Receiver's delayed-ack timer + flush boundary.
    FlushAcks,
    /// Deliver up to `n` data units, dropping/duplicating/reordering
    /// whole datagrams by mask bits.
    DeliverData {
        n: u8,
        drop_mask: u8,
        dup_mask: u8,
        from_back: u8,
    },
    /// Deliver up to `n` ack units toward the sender, with loss.
    DeliverAcks { n: u8, drop_mask: u8 },
}

fn dgram_step_strategy() -> impl Strategy<Value = DStep> {
    prop_oneof![
        (1u8..20).prop_map(DStep::Create),
        Just(DStep::Tick),
        Just(DStep::FlushData),
        Just(DStep::FlushAcks),
        (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()).prop_map(
            |(n, drop_mask, dup_mask, from_back)| DStep::DeliverData {
                n: n % 8,
                drop_mask,
                dup_mask,
                from_back,
            }
        ),
        (any::<u8>(), any::<u8>()).prop_map(|(n, drop_mask)| DStep::DeliverAcks {
            n: n % 8,
            drop_mask
        }),
    ]
}
