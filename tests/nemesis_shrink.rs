//! End-to-end demonstration of the nemesis shrinker: a deliberately
//! broken protocol variant (recovery restores the checkpoint but skips
//! log redo — the classic "forgot the REDO pass" bug) fails a fault
//! campaign, and `ddmin` reduces the failing schedule to a 1-minimal,
//! replayable reproduction.
//!
//! With redo ablated, *any* crash reverts the victim to its initial
//! image and destroys committed value, so the conservation oracle fires
//! — but only when the schedule actually crashes someone. The faultless
//! run passes, which makes the schedule load-bearing: the shrinker has
//! something real to minimize, and the minimum is a single crash.

use dvp_core::SiteConfig;
use dvp_nemesis::{
    ddmin, generate, run_campaign, CampaignConfig, FaultEvent, FaultSchedule, Intensity, Replay,
};
use dvp_simnet::network::{LinkConfig, NetworkConfig};
use dvp_simnet::time::SimDuration;
use dvp_workloads::AirlineWorkload;

const N_SITES: usize = 4;
const HORIZON_MS: u64 = 800;

fn quiet_net() -> NetworkConfig {
    NetworkConfig {
        default_link: LinkConfig {
            delay_min: SimDuration::millis(1),
            delay_max: SimDuration::millis(8),
            loss: 0.0,
            duplicate: 0.0,
        },
        ..Default::default()
    }
}

fn broken_campaign(seed: u64) -> CampaignConfig {
    let w = AirlineWorkload {
        n_sites: N_SITES,
        flights: 2,
        seats_per_flight: 200,
        txns: 30,
        ..Default::default()
    }
    .generate(seed);
    let site = SiteConfig {
        unsafe_skip_recovery_redo: true,
        ..Default::default()
    };
    CampaignConfig {
        seed,
        n_sites: N_SITES,
        horizon_ms: HORIZON_MS,
        audit_points: 8,
        site,
        base_net: quiet_net(),
        catalog: w.catalog,
        scripts: w.scripts,
        trace: false,
    }
}

/// Find a seed whose campaign fails under the broken variant — but only
/// when its fault schedule runs (the faultless run must pass, so the
/// schedule itself is load-bearing and worth shrinking).
fn failing_seed() -> (u64, CampaignConfig, FaultSchedule) {
    for seed in 0..30u64 {
        let schedule = generate(seed, N_SITES, HORIZON_MS, &Intensity::standard());
        let cfg = broken_campaign(seed);
        if !run_campaign(&cfg, &schedule).passed()
            && run_campaign(&cfg, &FaultSchedule::default()).passed()
        {
            return (seed, cfg, schedule);
        }
    }
    panic!("no failing seed in 0..30 — the redo ablation should be detectable");
}

#[test]
fn shrinker_reduces_a_failing_campaign_to_a_minimal_replayable_schedule() {
    let (seed, cfg, schedule) = failing_seed();

    let fails = |indices: &[usize]| !run_campaign(&cfg, &schedule.subset(indices)).passed();
    let kept = ddmin(schedule.events.len(), fails);
    let minimal = schedule.subset(&kept);

    // The shrunk schedule still reproduces the violation...
    let verdict = run_campaign(&cfg, &minimal);
    assert!(
        !verdict.passed(),
        "shrunk schedule must still fail (seed {seed})"
    );
    // ...and it shrank to the essence of the bug: one crash-inducing
    // event (a plain crash, or an armed crashpoint that crashes the
    // victim from inside the protocol).
    assert_eq!(
        kept.len(),
        1,
        "redo ablation fails on any single crash; shrunk: {:?}",
        minimal.events
    );
    assert!(
        matches!(
            minimal.events[0],
            FaultEvent::Crash { .. } | FaultEvent::ArmCrashpoint { .. }
        ),
        "minimal event must induce a crash: {:?}",
        minimal.events[0]
    );

    // 1-minimality: removing any single remaining event makes it pass.
    for drop in 0..kept.len() {
        let sub: Vec<usize> = kept
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != drop)
            .map(|(_, &i)| i)
            .collect();
        assert!(
            !fails(&sub),
            "schedule is not 1-minimal: still fails without event {}",
            kept[drop]
        );
    }

    // Shrinking is deterministic: same failure, same minimal schedule.
    let kept_again = ddmin(schedule.events.len(), fails);
    assert_eq!(kept, kept_again, "ddmin must be deterministic");

    // The replay line round-trips and fingerprints the minimal schedule.
    let replay = Replay::new(seed, "broken-redo", &schedule, kept.clone());
    let line = replay.to_string();
    assert!(line.contains(&format!("seed={seed}")), "line: {line}");
    let keep_str = line
        .split("keep=")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .expect("replay line carries keep=");
    assert_eq!(Replay::parse_keep(keep_str), Some(kept.clone()));
    assert!(line.contains(&format!("digest={:08x}", minimal.digest())));
}

/// `ddmin` also minimizes *media-fault* reproductions. The healthy
/// protocol survives bit rot (salvage + quarantine keep every oracle
/// green), so the interesting predicate here is not "an oracle tripped"
/// but "the rot actually bit": the shrinker must reduce a full
/// media-intensity schedule to the 1-minimal pair that still produces a
/// salvage — the `BitRot` arming plus one crash of the same site —
/// and the replay line must round-trip it.
#[test]
fn bitrot_repro_shrinks_to_the_arming_and_one_crash() {
    // Find a seed whose media campaign actually salvages something.
    let (seed, cfg, schedule) = (0..30u64)
        .find_map(|seed| {
            let schedule = generate(seed, N_SITES, HORIZON_MS, &Intensity::media());
            if !schedule
                .events
                .iter()
                .any(|e| matches!(e, FaultEvent::BitRot { .. }))
            {
                return None;
            }
            let mut cfg = broken_campaign(seed);
            cfg.site.unsafe_skip_recovery_redo = false; // healthy protocol
            let r = run_campaign(&cfg, &schedule);
            (r.passed() && r.salvages > 0).then_some((seed, cfg, schedule))
        })
        .expect("no salvaging media campaign in seeds 0..30");

    let salvages = |indices: &[usize]| {
        let r = run_campaign(&cfg, &schedule.subset(indices));
        assert!(r.passed(), "healthy protocol must survive any subsequence");
        r.salvages > 0
    };
    let kept = ddmin(schedule.events.len(), salvages);
    let minimal = schedule.subset(&kept);

    // The essence of a mid-log rot: the arming, and one crash of the
    // same site to manifest it.
    assert_eq!(kept.len(), 2, "shrunk: {:?}", minimal.events);
    let rot_site = minimal.events.iter().find_map(|e| match e {
        FaultEvent::BitRot { site } => Some(*site),
        _ => None,
    });
    let rot_site = rot_site.expect("minimal schedule keeps the BitRot arming");
    assert!(
        minimal
            .events
            .iter()
            .any(|e| matches!(e, FaultEvent::Crash { site, .. } if *site == rot_site)),
        "minimal schedule keeps a crash of the rotted site: {:?}",
        minimal.events
    );

    // 1-minimality: dropping either event loses the salvage.
    for drop in 0..kept.len() {
        let sub: Vec<usize> = kept
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != drop)
            .map(|(_, &i)| i)
            .collect();
        assert!(
            !salvages(&sub),
            "not 1-minimal: still salvages without event {}",
            kept[drop]
        );
    }

    // The replay line round-trips the minimal schedule and its digest.
    let replay = Replay::new(seed, "media-bitrot", &schedule, kept.clone());
    let line = replay.to_string();
    let keep_str = line
        .split("keep=")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .expect("replay line carries keep=");
    assert_eq!(Replay::parse_keep(keep_str), Some(kept));
    assert!(line.contains(&format!("digest={:08x}", minimal.digest())));
}

/// The healthy protocol survives the exact same campaigns — the failure
/// above is the ablation's fault, not the nemesis being unfair.
#[test]
fn healthy_variant_survives_the_same_campaigns() {
    for seed in 0..6u64 {
        let schedule = generate(seed, N_SITES, HORIZON_MS, &Intensity::standard());
        let mut cfg = broken_campaign(seed);
        cfg.site.unsafe_skip_recovery_redo = false;
        let r = run_campaign(&cfg, &schedule);
        assert!(r.passed(), "seed {seed}: {:?}", r.violation);
    }
}
