//! Serializability subject to redistribution (paper Section 6).
//!
//! For committed histories the engine must be equivalent to a serial
//! execution: (1) final per-item totals equal the initial totals plus the
//! committed deltas applied in any order (the ops commute — that is the
//! point of partitionable operators); (2) every committed full-value read
//! observes the running total at its commit instant; (3) no committed
//! decrement ever overdraws an item (the serial schedule is *feasible*).

use dvp::prelude::*;
use dvp::workloads::{AirlineWorkload, BankingWorkload, InventoryWorkload, Workload};
use proptest::prelude::*;

fn run_and_check(w: &Workload, conc2: bool, seed: u64) -> Result<(), TestCaseError> {
    let mut cfg = ClusterConfig::new(w.scripts.len(), w.catalog.clone());
    cfg.scripts = w.scripts.clone();
    cfg.seed = seed;
    if conc2 {
        cfg.site.conc = ConcMode::Conc2;
        cfg.net = NetworkConfig::synchronous_ordered(SimDuration::millis(2));
    }
    let mut cl = Cluster::build(cfg);
    cl.run_until(SimTime::ZERO + SimDuration::secs(120));

    cl.auditor()
        .check_conservation()
        .map_err(|e| TestCaseError::fail(e.to_string()))?;
    let m = cl.stats().txn;
    cl.auditor()
        .check_reads(&m)
        .map_err(|e| TestCaseError::fail(e.to_string()))?;

    // (3) replay the global commit order; running totals must never dip
    // below zero (the committed history is a feasible serial schedule).
    let mut running: std::collections::BTreeMap<ItemId, i64> = w
        .catalog
        .items()
        .iter()
        .map(|d| (d.id, d.total as i64))
        .collect();
    for entry in m.global_commit_order() {
        for &(item, delta) in &entry.deltas {
            let v = running.get_mut(&item).expect("catalogued item");
            *v += delta;
            prop_assert!(
                *v >= 0,
                "item {item:?} overdrawn to {v} by txn {:?}",
                entry.txn
            );
        }
    }

    // (1) final fragments equal the replayed totals.
    let frag_totals = cl.auditor().fragment_totals();
    for (item, total) in running {
        prop_assert_eq!(frag_totals[&item] as i64, total, "item {:?}", item);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn airline_histories_are_serializable(seed in any::<u64>(), skew in 0.0f64..2.5) {
        let w = AirlineWorkload {
            txns: 60,
            seats_per_flight: 300,
            site_skew: skew,
            mix: (0.6, 0.2, 0.1, 0.1),
            ..Default::default()
        }.generate(seed);
        run_and_check(&w, false, seed)?;
    }

    #[test]
    fn banking_histories_are_serializable(seed in any::<u64>()) {
        let w = BankingWorkload {
            txns: 60,
            accounts: 4,
            ..Default::default()
        }.generate(seed);
        run_and_check(&w, false, seed)?;
    }

    #[test]
    fn inventory_histories_are_serializable_under_conc2(seed in any::<u64>()) {
        let w = InventoryWorkload {
            txns: 50,
            ..Default::default()
        }.generate(seed);
        run_and_check(&w, true, seed)?;
    }
}
