//! Property and round-trip tests for the sorted-rank [`Interner`] that
//! backs the dense hot-path tables (see `dvp::core::dense`).
//!
//! The dense layout replaced `BTreeMap`s on the dispatch path, and its
//! correctness contract is exactly two properties:
//!
//! 1. **Order-independence** — the index assigned to a key depends only
//!    on the key *set*, never on insertion order, so any rebuild (e.g.
//!    after a crash) produces identical indices.
//! 2. **Sorted iteration** — walking a dense table `0..len` visits keys
//!    in ascending order, i.e. exactly the iteration order of the
//!    `BTreeMap` it replaced. This is what keeps golden obs traces
//!    byte-identical.

use dvp::core::dense::Interner;
use dvp::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeMap;

fn ms(n: u64) -> SimTime {
    SimTime::ZERO + SimDuration::millis(n)
}

/// Deterministic Fisher–Yates driven by a splitmix-style LCG, so a
/// proptest-drawn `u64` seed yields an arbitrary insertion order without
/// needing a shuffle strategy in the harness.
fn shuffle<T>(items: &mut [T], mut seed: u64) {
    for i in (1..items.len()).rev() {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (seed >> 33) as usize % (i + 1);
        items.swap(i, j);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Shuffled insertion produces the same assignment and iteration
    /// order as the `BTreeMap` the interner replaced.
    #[test]
    fn interner_matches_btreemap_under_shuffle(
        keys in proptest::collection::vec(0u64..10_000, 1..64),
        seed in any::<u64>(),
    ) {
        // The reference: a BTreeMap over the same key set, whose k-th
        // iterated key must sit at dense index k.
        let reference: BTreeMap<u64, ()> = keys.iter().map(|&k| (k, ())).collect();

        let mut shuffled = keys.clone();
        shuffle(&mut shuffled, seed);
        let interner: Interner<u64> = Interner::from_universe(shuffled);
        let baseline: Interner<u64> = Interner::from_universe(keys.clone());

        // Order-independence: any insertion order, same interner.
        prop_assert_eq!(&interner, &baseline);
        prop_assert_eq!(interner.len(), reference.len());

        // Assignment and iteration match BTreeMap order exactly.
        for (rank, (&key, _)) in reference.iter().enumerate() {
            prop_assert_eq!(interner.idx(key), Some(rank as u32));
            prop_assert_eq!(interner.key(rank as u32), key);
        }
        let walked: Vec<u64> = interner.iter().map(|(_, k)| k).collect();
        let expected: Vec<u64> = reference.keys().copied().collect();
        prop_assert_eq!(walked, expected);

        // Keys outside the universe never get an index.
        prop_assert_eq!(interner.idx(10_001), None);
    }
}

/// A crashed site rebuilds its item interner bit-identically: the dense
/// indices its recovered tables use are the same ones its pre-crash
/// tables used, because the assignment depends only on the (stable)
/// catalog, not on any volatile insertion history.
#[test]
fn crash_recover_rebuilds_identical_indices() {
    let mut catalog = Catalog::new();
    let flight = catalog.add("flight", 400, Split::Even);
    let hotel = catalog.add("hotel", 200, Split::Even);
    let car = catalog.add("car", 120, Split::Even);
    let items = [flight, hotel, car];

    let mut cl = Scenario::dvp_sites(4, catalog)
        .at(2, ms(1), TxnSpec::reserve(flight, 120)) // solicits into site 2
        .at(2, ms(40), TxnSpec::reserve(hotel, 10))
        .at(2, ms(300), TxnSpec::reserve(car, 5)) // post-recovery traffic
        .faults(FaultPlan::none().crash(ms(150), 2).recover(ms(200), 2))
        .build_dvp();

    // Snapshot the interner before the crash fires.
    cl.run_until(ms(140));
    let before = cl.sim.node(2).item_interner().clone();

    cl.run_to_quiescence();
    let after = cl.sim.node(2).item_interner();

    assert_eq!(
        &before, after,
        "recovery must rebuild the identical dense-index assignment"
    );
    // The assignment is the catalog's sorted rank, for every item.
    for item in items {
        assert_eq!(before.idx(item), after.idx(item));
    }
    let walked: Vec<ItemId> = after.iter().map(|(_, k)| k).collect();
    let mut sorted = items.to_vec();
    sorted.sort();
    assert_eq!(walked, sorted, "dense walk order is ascending ItemId");

    // The recovered site keeps working against those indices.
    let m = cl.stats().txn;
    assert_eq!(m.committed(), 3, "all three txns commit across the crash");
    cl.auditor().check_conservation().unwrap();
}
