//! Cross-engine integration: the DvP engine and the traditional 2PC
//! baseline consume identical workloads; on a healthy network both must
//! process them correctly, and their relative behaviour must match the
//! paper's comparative claims. Runs are described with the [`Scenario`]
//! builder; tests needing node access use its white-box escape hatches.

use dvp::baselines::{Placement, TradConfig};
use dvp::prelude::*;
use dvp::workloads::{AirlineWorkload, BankingWorkload};

fn horizon() -> SimTime {
    SimTime::ZERO + SimDuration::secs(60)
}

#[test]
fn healthy_network_both_engines_clear_the_workload() {
    let w = AirlineWorkload {
        txns: 80,
        seats_per_flight: 5_000,
        mix: (0.8, 0.2, 0.0, 0.0),
        ..Default::default()
    }
    .generate(3);

    let d = Scenario::dvp(&w).until(horizon()).run();

    // White-box on the baseline side: replica convergence needs the
    // built cluster, not just the report.
    let mut trad = Scenario::trad(&w).build_trad();
    trad.run_until(horizon());
    trad.check_replica_convergence().unwrap();
    let tm = trad.metrics();

    assert_eq!(d.committed + d.aborted, 80, "DvP decides everything");
    assert!(d.commit_ratio > 0.95);
    // The baseline loses a slice to distributed-lock timeouts even on a
    // healthy network (each transaction locks a 3-site quorum); DvP's
    // single-site execution is exactly what avoids that.
    assert!(tm.commit_ratio() > 0.6);
    assert!(d.commit_ratio > tm.commit_ratio());
    assert_eq!(tm.still_blocked(), 0);

    // With ample quotas DvP's all-Incr/-covered-Decr mix is mostly local;
    // 2PC pays quorum coordination for every transaction.
    assert!(
        d.messages < trad.sim.stats().sent,
        "DvP must use fewer messages on a local-heavy mix: {} vs {}",
        d.messages,
        trad.sim.stats().sent
    );
}

#[test]
fn both_engines_agree_on_final_totals_when_everything_commits() {
    // Deterministic script where every transaction can commit in both
    // engines: final logical totals must agree exactly.
    let mut catalog = Catalog::new();
    let a = catalog.add("A", 1_000, Split::Even);
    let b = catalog.add("B", 500, Split::Even);
    fn ms(n: u64) -> SimTime {
        SimTime::ZERO + SimDuration::millis(n)
    }
    // Spaced far apart: no contention in either engine.
    let script: Vec<(usize, u64, TxnSpec)> = vec![
        (0, 1, TxnSpec::reserve(a, 100)),
        (1, 200, TxnSpec::release(b, 50)),
        (2, 400, TxnSpec::transfer(a, b, 200)),
        (3, 600, TxnSpec::reserve(b, 30)),
    ];

    let mut dvp_scn = Scenario::dvp_sites(4, catalog.clone());
    for (s, t, spec) in &script {
        dvp_scn = dvp_scn.at(*s, ms(*t), spec.clone());
    }
    let mut dvp = dvp_scn.build_dvp();
    dvp.run_until(horizon());
    let dm = dvp.stats().txn;
    assert_eq!(dm.committed(), 4);
    let dvp_a: u64 = (0..4).map(|s| dvp.sim.node(s).fragments().get(a)).sum();
    let dvp_b: u64 = (0..4).map(|s| dvp.sim.node(s).fragments().get(b)).sum();

    let mut trad_scn = Scenario::trad_sites(4, catalog);
    for (s, t, spec) in &script {
        trad_scn = trad_scn.at(*s, ms(*t), spec.clone());
    }
    let mut trad = trad_scn.build_trad();
    trad.run_until(horizon());
    assert_eq!(trad.metrics().committed(), 4);
    trad.check_replica_convergence().unwrap();
    let trad_a = (0..4)
        .map(|s| trad.sim.node(s).replica(a))
        .max_by_key(|r| r.1)
        .unwrap()
        .0;
    let trad_b = (0..4)
        .map(|s| trad.sim.node(s).replica(b))
        .max_by_key(|r| r.1)
        .unwrap()
        .0;

    assert_eq!(dvp_a, 700);
    assert_eq!(dvp_b, 720);
    assert_eq!(trad_a, dvp_a, "engines must agree on item A");
    assert_eq!(trad_b, dvp_b, "engines must agree on item B");
}

#[test]
fn deposits_commit_at_isolated_branch_only_under_dvp() {
    // The Section 2.2 banking anecdote, executed against both engines.
    let w = BankingWorkload {
        n_sites: 4,
        accounts: 2,
        txns: 0,
        ..Default::default()
    }
    .generate(1);
    let acct = w.catalog.items()[0].id;
    let sched = PartitionSchedule::fully_connected(4).isolate_at(SimTime::ZERO, &[3]);
    fn ms(n: u64) -> SimTime {
        SimTime::ZERO + SimDuration::millis(n)
    }

    let d = Scenario::dvp(&w)
        .net(NetworkConfig::reliable().with_partitions(sched.clone()))
        .at(3, ms(1), TxnSpec::release(acct, 500))
        .run();
    assert_eq!(d.committed, 1, "DvP deposit commits locally");

    for placement in [Placement::ReplicatedQuorum, Placement::PrimaryCopy] {
        let t = Scenario::trad(&w)
            .trad_config(TradConfig {
                placement,
                ..Default::default()
            })
            .net(NetworkConfig::reliable().with_partitions(sched.clone()))
            .at(3, ms(1), TxnSpec::release(acct, 500))
            .until(horizon())
            .run();
        assert_eq!(
            t.committed, 0,
            "{placement:?}: the isolated branch cannot reach its replicas"
        );
    }
}
