//! The flagship property test: **conservation under arbitrary failures**.
//!
//! For random combinations of workload, partition schedule, site
//! crash/recovery plan, loss, and duplication, the invariant of paper
//! Section 3 — `N = ΣNᵢ + N_M` for every item, adjusted by committed
//! deltas — must hold at *every* probed instant, not only at quiescence.

use dvp::prelude::*;
use dvp::workloads::AirlineWorkload;
use proptest::prelude::*;

fn ms(n: u64) -> SimTime {
    SimTime::ZERO + SimDuration::millis(n)
}

#[derive(Clone, Debug)]
struct Scenario {
    seed: u64,
    n_sites: usize,
    txns: usize,
    loss: f64,
    duplicate: f64,
    site_skew: f64,
    // (cut set bitmask, start ms, duration ms)
    partitions: Vec<(u8, u64, u64)>,
    // (site, crash ms, down-for ms)
    crashes: Vec<(usize, u64, u64)>,
    conc2: bool,
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    (
        any::<u64>(),
        3usize..6,
        10usize..60,
        0.0f64..0.4,
        0.0f64..0.3,
        0.0f64..2.0,
        proptest::collection::vec((any::<u8>(), 5u64..400, 20u64..400), 0..3),
        proptest::collection::vec((0usize..6, 5u64..500, 20u64..400), 0..3),
        any::<bool>(),
    )
        .prop_map(
            |(seed, n_sites, txns, loss, duplicate, site_skew, partitions, crashes, conc2)| {
                Scenario {
                    seed,
                    n_sites,
                    txns,
                    loss,
                    duplicate,
                    site_skew,
                    partitions,
                    crashes,
                    conc2,
                }
            },
        )
}

fn run_scenario(sc: &Scenario) -> Result<(), TestCaseError> {
    let w = AirlineWorkload {
        n_sites: sc.n_sites,
        flights: 3,
        seats_per_flight: 400,
        txns: sc.txns,
        site_skew: sc.site_skew,
        mix: (0.6, 0.2, 0.15, 0.05),
        ..Default::default()
    }
    .generate(sc.seed);

    // Build partition schedule (episodes sorted and non-overlapping).
    let mut sched = PartitionSchedule::fully_connected(sc.n_sites);
    let mut t = 0u64;
    for &(mask, start, dur) in &sc.partitions {
        let start = t.max(start);
        let cut: Vec<usize> = (0..sc.n_sites).filter(|&s| mask & (1 << s) != 0).collect();
        if cut.is_empty() || cut.len() == sc.n_sites {
            continue;
        }
        sched = sched.isolate_at(ms(start), &cut).heal_at(ms(start + dur));
        t = start + dur + 1;
    }
    let mut net = NetworkConfig::lossy(sc.loss);
    net.default_link.duplicate = sc.duplicate;
    let net = net.with_partitions(sched);

    let mut faults = FaultPlan::none();
    for &(site, crash, down) in &sc.crashes {
        let site = site % sc.n_sites;
        faults = faults
            .crash(ms(crash), site)
            .recover(ms(crash + down), site);
    }

    let mut cfg = ClusterConfig::new(sc.n_sites, w.catalog.clone());
    cfg.net = net;
    cfg.faults = faults;
    cfg.scripts = w.scripts.clone();
    cfg.seed = sc.seed;
    if sc.conc2 {
        cfg.site.conc = ConcMode::Conc2;
    }

    let mut cl = Cluster::build(cfg);
    // Probe the invariant throughout the run.
    for k in 1..=12u64 {
        cl.run_until(ms(k * 150));
        cl.auditor()
            .check_conservation()
            .map_err(|e| TestCaseError::fail(format!("at {}ms: {e}", k * 150)))?;
    }
    cl.run_until(ms(30_000));
    cl.auditor()
        .check_conservation()
        .map_err(|e| TestCaseError::fail(format!("at end: {e}")))?;

    // Read exactness for whatever reads committed.
    let m = cl.stats().txn;
    cl.auditor()
        .check_reads(&m)
        .map_err(|e| TestCaseError::fail(format!("reads: {e}")))?;
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn conservation_under_arbitrary_failures(sc in scenario_strategy()) {
        run_scenario(&sc)?;
    }
}

/// A pinned worst-case regression scenario (dense faults, high loss) that
/// runs on every `cargo test` without proptest's randomness.
#[test]
fn pinned_dense_fault_scenario() {
    let sc = Scenario {
        seed: 0xDEAD,
        n_sites: 5,
        txns: 50,
        loss: 0.35,
        duplicate: 0.25,
        site_skew: 1.5,
        partitions: vec![(0b00110, 20, 300), (0b01001, 400, 200)],
        crashes: vec![(1, 50, 200), (4, 300, 350)],
        conc2: false,
    };
    run_scenario(&sc).unwrap();
}
