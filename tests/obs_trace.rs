//! Trace-layer integration tests: the JSONL export is a *golden* artifact
//! (same scenario + seed ⇒ byte-identical bytes run over run), and the
//! captured event stream reconstructs complete cross-site transaction
//! timelines (solicit at home → donate at peers → absorb → commit).

use dvp::obs::{txn_timeline, EventKind};
use dvp::prelude::*;

fn ms(n: u64) -> SimTime {
    SimTime::ZERO + SimDuration::millis(n)
}

/// A scenario that must solicit: site 1 sells 40 seats against a local
/// quota of 25, so peers donate the difference over Virtual Messages.
fn soliciting_scenario() -> Scenario {
    let mut catalog = Catalog::new();
    let flight = catalog.add("flight", 100, Split::Even);
    Scenario::dvp_sites(4, catalog)
        .name("obs/solicit")
        .at(1, ms(1), TxnSpec::reserve(flight, 40))
        .at(0, ms(200), TxnSpec::reserve(flight, 3))
        .seed(9)
        .trace(true)
}

#[test]
fn golden_trace_is_byte_identical_across_runs() {
    let a = soliciting_scenario().run().trace_jsonl();
    let b = soliciting_scenario().run().trace_jsonl();
    assert!(!a.is_empty());
    assert!(a.starts_with("{\"trace\":\"dvp-obs/v1\",\"scenario\":\"obs/solicit\",\"seed\":9,"));
    assert!(a.lines().count() > 2, "header plus events");
    assert_eq!(a, b, "same scenario + seed must export identical bytes");
}

/// `group_commit: false` + `coalesce: false` reproduces the original
/// per-record forcing and one-transmission-per-frame wire behaviour
/// byte-for-byte: the trace must match the golden file captured before
/// either optimisation existed. If this fails, the legacy path changed
/// observable behaviour — which it must never do.
#[test]
fn non_batched_trace_matches_pre_group_commit_golden() {
    let got = soliciting_scenario()
        .site(SiteConfig {
            group_commit: false,
            coalesce: false,
            ..SiteConfig::default()
        })
        .run()
        .trace_jsonl();
    let golden = include_str!("golden/obs_solicit_nobatch.jsonl");
    assert_eq!(got, golden, "non-batched trace diverged from the golden");
}

/// Group commit coalesces forces: the same scenario must emit strictly
/// fewer `log_force` events than per-record forcing, while every
/// protocol-level event (commits, solicits, donations, Vm traffic)
/// stays identical. Wire coalescing is pinned off on both sides so the
/// comparison isolates group commit (coalescing changes the Vm event
/// stream by design — delayed acks merge, retransmit pacing differs).
#[test]
fn group_commit_reduces_forces_without_touching_protocol_events() {
    let batched = soliciting_scenario()
        .site(SiteConfig {
            coalesce: false,
            ..SiteConfig::default()
        })
        .run()
        .trace_jsonl();
    let golden = include_str!("golden/obs_solicit_nobatch.jsonl");
    let count = |s: &str, ev: &str| s.matches(ev).count();
    assert!(
        count(&batched, "\"ev\":\"log_force\"") < count(golden, "\"ev\":\"log_force\""),
        "group commit must coalesce at least one force in this scenario"
    );
    for ev in [
        "\"ev\":\"txn_commit\"",
        "\"ev\":\"txn_solicit\"",
        "\"ev\":\"txn_donate\"",
        "\"ev\":\"txn_absorb\"",
        "\"ev\":\"vm_send\"",
        "\"ev\":\"vm_accept\"",
        "\"ev\":\"vm_ack\"",
    ] {
        assert_eq!(
            count(&batched, ev),
            count(golden, ev),
            "group commit changed the {ev} stream"
        );
    }
}

#[test]
fn trace_reconstructs_cross_site_solicit_donate_commit_timeline() {
    let r = soliciting_scenario().run();
    assert_eq!(r.committed, 2);

    // Find the solicited (non-fast-path) commit and pull its timeline.
    let txn = r
        .events
        .iter()
        .find_map(|e| match e.kind {
            EventKind::TxnCommit {
                txn,
                fast_path: false,
                ..
            } => Some(txn),
            _ => None,
        })
        .expect("the 40-seat reservation commits off the fast path");
    let timeline = txn_timeline(&r.events, txn);

    // Timeline is in simulated-time order…
    assert!(timeline.windows(2).all(|w| w[0].at_us <= w[1].at_us));
    // …starts at the home site and commits there. (Events *after* the
    // commit are legal: a surplus donation from a second donor is still
    // absorbed once the transaction no longer needs it.)
    assert!(matches!(timeline[0].kind, EventKind::TxnStart { .. }));
    assert_eq!(timeline[0].site, 1);
    let commit = timeline
        .iter()
        .find(|e| matches!(e.kind, EventKind::TxnCommit { .. }))
        .expect("timeline contains the commit");
    assert_eq!(commit.site, 1);

    // The span crosses sites: solicitations leave site 1, donations are
    // recorded at the donors, absorbs back at site 1.
    let solicits: Vec<_> = timeline
        .iter()
        .filter(|e| matches!(e.kind, EventKind::TxnSolicit { .. }))
        .collect();
    let donates: Vec<_> = timeline
        .iter()
        .filter(|e| matches!(e.kind, EventKind::TxnDonate { .. }))
        .collect();
    let absorbs: Vec<_> = timeline
        .iter()
        .filter(|e| matches!(e.kind, EventKind::TxnAbsorb { .. }))
        .collect();
    assert!(!solicits.is_empty(), "home site solicited");
    assert!(solicits.iter().all(|e| e.site == 1));
    assert!(!donates.is_empty(), "at least one peer donated");
    assert!(
        donates.iter().all(|e| e.site != 1),
        "donations happen at peers"
    );
    assert!(!absorbs.is_empty(), "value came home");
    assert!(absorbs.iter().all(|e| e.site == 1));

    // Causal order: first solicit < first donate < first absorb < commit.
    assert!(solicits[0].at_us <= donates[0].at_us);
    assert!(donates[0].at_us <= absorbs[0].at_us);
    assert!(absorbs[0].at_us <= commit.at_us);

    // And the fast-path transaction never solicited.
    let fast = r
        .events
        .iter()
        .find_map(|e| match e.kind {
            EventKind::TxnCommit {
                txn,
                fast_path: true,
                ..
            } => Some(txn),
            _ => None,
        })
        .expect("the 3-seat reservation is write-only and local");
    assert!(txn_timeline(&r.events, fast)
        .iter()
        .all(|e| !matches!(e.kind, EventKind::TxnSolicit { .. })));
}

#[test]
fn trad_engine_traces_too() {
    let w = dvp::workloads::AirlineWorkload {
        txns: 20,
        ..Default::default()
    }
    .generate(5);
    let r = Scenario::trad(&w)
        .name("obs/trad")
        .until(ms(5_000))
        .seed(5)
        .trace(true)
        .run();
    assert!(r.committed > 0);
    assert!(r
        .events
        .iter()
        .any(|e| matches!(e.kind, EventKind::TxnCommit { .. })));
    let again = Scenario::trad(&w)
        .name("obs/trad")
        .until(ms(5_000))
        .seed(5)
        .trace(true)
        .run();
    assert_eq!(r.trace_jsonl(), again.trace_jsonl());
}
