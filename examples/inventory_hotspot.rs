//! Inventory control + the hot-spot counter comparison (Section 8).
//!
//! Part 1 runs a distributed warehouse network: multi-line shipment
//! orders deplete stock, restocks replenish it, and a stocktake reads the
//! exact level of a product.
//!
//! Part 2 is the intra-site analogue the paper sketches for "aggregate
//! fields": many threads hammering one hot counter under (a) exclusive
//! locking, (b) O'Neil's Escrow method, (c) a DvP-style sharded counter —
//! same invariant, very different concurrency.
//!
//! Run with: `cargo run --release --example inventory_hotspot`

use dvp::baselines::escrow::Counter;
use dvp::baselines::{EscrowCounter, ExclusiveCounter, ShardedCounter};
use dvp::prelude::*;
use dvp::workloads::InventoryWorkload;
use std::sync::Arc;
use std::time::Instant;

fn part1_distributed() {
    println!("=== part 1: distributed warehouse (4 sites, 6 SKUs) ===\n");
    let workload = InventoryWorkload {
        txns: 300,
        ..Default::default()
    }
    .generate(5);
    let sku0 = workload.catalog.items()[0].id;

    // White-box build: the stock tally below needs per-site fragments.
    let mut cluster = Scenario::dvp(&workload).build_dvp();
    cluster.run_until(SimTime::ZERO + SimDuration::secs(30));
    cluster
        .auditor()
        .check_conservation()
        .expect("conservation");

    let m = cluster.stats().txn;
    println!(
        "orders: {} committed, {} aborted ({} were local fast-path)",
        m.committed(),
        m.aborted(),
        m.sites.iter().map(|s| s.fast_path_commits).sum::<u64>()
    );
    let stock: u64 = (0..4)
        .map(|s| cluster.sim.node(s).fragments().get(sku0))
        .sum();
    println!("sku-0 stock across warehouses: {stock}");
    let stocktakes = m
        .global_commit_order()
        .iter()
        .flat_map(|e| e.reads.clone())
        .count();
    println!("exact stocktakes completed: {stocktakes}\n");
}

fn bench_counter(name: &str, counter: Arc<dyn Counter>, threads: usize) -> f64 {
    let per_thread = 30_000usize;
    let start = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let c = Arc::clone(&counter);
            std::thread::spawn(move || {
                for _ in 0..per_thread {
                    if let Some(t) = c.try_reserve(1) {
                        // stand-in for the rest of the transaction
                        std::hint::black_box((0..150).fold(0u64, |a, b| a.wrapping_add(b)));
                        c.commit_decr(t);
                    } else {
                        c.incr(1);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let ops = (threads * per_thread) as f64 / start.elapsed().as_secs_f64();
    println!("  {name:<22} {ops:>12.0} ops/s");
    ops
}

fn part2_hotspot() {
    println!("=== part 2: one hot counter, 4 threads ===\n");
    let initial = 1u64 << 40;
    let ex = bench_counter(
        "exclusive lock",
        Arc::new(ExclusiveCounter::new(initial)),
        4,
    );
    let es = bench_counter("escrow (O'Neil)", Arc::new(EscrowCounter::new(initial)), 4);
    let sh = bench_counter(
        "DvP sharded (16)",
        Arc::new(ShardedCounter::new(initial, 16)),
        4,
    );
    println!(
        "\nescrow {:.1}x, sharded {:.1}x the exclusive-lock throughput",
        es / ex,
        sh / ex
    );
}

fn main() {
    part1_distributed();
    part2_hotspot();
}
