//! Quickstart: the paper's Section 3 worked example, executed.
//!
//! Flight A has N = 100 seats sold from four sites W, X, Y, Z, each
//! starting with a quota of 25. Customers book at W until its quota runs
//! low; then a customer wanting 5 seats arrives at X after X has run dry,
//! forcing X to solicit value from its peers via Virtual Messages.
//!
//! Run with: `cargo run --example quickstart`

use dvp::prelude::*;

fn ms(n: u64) -> SimTime {
    SimTime::ZERO + SimDuration::millis(n)
}

fn main() {
    const W: usize = 0;
    const X: usize = 1;

    let mut catalog = Catalog::new();
    let flight_a = catalog.add("flight-A", 100, Split::Even);

    // The Section 3 script: W sells 3, 4, 5 seats; X sells its whole
    // quota; then a party of 5 arrives at X with nothing left locally.
    let scenario = Scenario::dvp_sites(4, catalog)
        .name("quickstart")
        .at(W, ms(1), TxnSpec::reserve(flight_a, 3))
        .at(W, ms(2), TxnSpec::reserve(flight_a, 4))
        .at(W, ms(3), TxnSpec::reserve(flight_a, 5))
        .at(X, ms(4), TxnSpec::reserve(flight_a, 25)) // X's quota gone
        .at(X, ms(40), TxnSpec::reserve(flight_a, 5)) // must solicit
        .at(W, ms(200), TxnSpec::read(flight_a)); // exact seat count

    // White-box build: this example inspects per-site fragments below.
    let mut cluster = scenario.build_dvp();
    cluster.run_to_quiescence();

    let metrics = cluster.stats().txn;
    println!("=== DvP quickstart: airline reservation (paper Section 3) ===\n");
    println!(
        "transactions: {} committed, {} aborted",
        metrics.committed(),
        metrics.aborted()
    );
    println!(
        "solicitations: {} requests sent, {} donations made\n",
        metrics.requests_sent(),
        metrics.donations()
    );

    println!("final fragments of flight-A (N_W, N_X, N_Y, N_Z):");
    for site in 0..4 {
        let name = ["W", "X", "Y", "Z"][site];
        println!(
            "  N_{name} = {:>3}",
            cluster.sim.node(site).fragments().get(flight_a)
        );
    }
    let total: u64 = (0..4)
        .map(|s| cluster.sim.node(s).fragments().get(flight_a))
        .sum();
    println!("  ───────────");
    println!("  N   = {total}   (100 initial − 42 sold)\n");

    let reads: Vec<_> = metrics
        .global_commit_order()
        .iter()
        .flat_map(|e| e.reads.clone())
        .collect();
    println!("W's full-value read observed N = {}", reads[0].1);

    cluster
        .auditor()
        .check_conservation()
        .expect("N = ΣNᵢ + N_M must hold");
    cluster
        .auditor()
        .check_reads(&metrics)
        .expect("committed reads must be exact");
    println!("\ninvariants: conservation OK, read exactness OK");

    assert_eq!(metrics.committed(), 6);
    assert_eq!(total, 58);
}
