//! Airline reservations through a network partition — DvP vs 2PC.
//!
//! An 8-site reservation system suffers a clean 4/4 partition for half
//! the run. The same workload is executed by the DvP engine and by a
//! traditional strict-2PL + 2PC engine over quorum-replicated data.
//! Watch the commit counts: DvP keeps selling seats in *both* halves
//! (each site owns a quota); the traditional system can only make
//! progress where a majority lives — and a 4/4 split has none.
//!
//! Run with: `cargo run --example airline_partition`

use dvp::baselines::{TradCluster, TradClusterConfig};
use dvp::prelude::*;
use dvp::workloads::AirlineWorkload;

fn ms(n: u64) -> SimTime {
    SimTime::ZERO + SimDuration::millis(n)
}

fn main() {
    let n = 8;
    let workload = AirlineWorkload {
        n_sites: n,
        flights: 4,
        seats_per_flight: 10_000,
        txns: 400,
        mix: (0.85, 0.15, 0.0, 0.0),
        ..Default::default()
    }
    .generate(7);

    // Partition: sites {0..3} | {4..7} from 500ms to 1500ms.
    let schedule = PartitionSchedule::fully_connected(n)
        .split_at(ms(500), &[&[0, 1, 2, 3], &[4, 5, 6, 7]])
        .heal_at(ms(1500));
    let horizon = ms(10_000);

    println!("=== 8-site airline, 4/4 partition from 500ms to 1500ms ===\n");

    // ---- DvP ----
    let mut cfg = ClusterConfig::new(n, workload.catalog.clone());
    cfg.net = NetworkConfig::reliable().with_partitions(schedule.clone());
    cfg.scripts = workload.scripts.clone();
    let mut dvp = Cluster::build(cfg);
    dvp.run_until(horizon);
    dvp.auditor().check_conservation().expect("conservation");
    let dm = dvp.metrics();

    // ---- traditional 2PC over quorum-replicated data ----
    let mut cfg = TradClusterConfig::new(n, workload.catalog.clone());
    cfg.net = NetworkConfig::reliable().with_partitions(schedule);
    cfg.scripts = workload.scripts.clone();
    let mut trad = TradCluster::build(cfg);
    trad.run_until(horizon);
    let tm = trad.metrics();

    println!("                          DvP        2PC+quorum");
    println!(
        "committed                 {:<10} {}",
        dm.committed(),
        tm.committed()
    );
    println!(
        "aborted                   {:<10} {}",
        dm.aborted(),
        tm.aborted()
    );
    println!(
        "commit ratio              {:<10.1} {:.1}",
        dm.commit_ratio() * 100.0,
        tm.commit_ratio() * 100.0
    );
    let dvp_window = format!(
        "{:.0}ms",
        dm.decision_latency_percentile(100.0) as f64 / 1000.0
    );
    let trad_window = format!(
        "{:.0}ms",
        tm.max_blocking_us(trad.sim.now()) as f64 / 1000.0
    );
    println!("worst decision window     {dvp_window:<10} {trad_window}");
    println!("still blocked at end      {:<10} {}", 0, tm.still_blocked());

    println!("\nDvP kept both halves selling seats from their local quotas;");
    println!("2PC could not assemble a majority in either half and, worse,");
    println!("participants caught mid-commit stayed blocked until healing.");

    assert!(dm.commit_ratio() > tm.commit_ratio());
}
