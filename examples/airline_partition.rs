//! Airline reservations through a network partition — DvP vs 2PC.
//!
//! An 8-site reservation system suffers a clean 4/4 partition for half
//! the run. The same workload is executed by the DvP engine and by a
//! traditional strict-2PL + 2PC engine over quorum-replicated data.
//! Watch the commit counts: DvP keeps selling seats in *both* halves
//! (each site owns a quota); the traditional system can only make
//! progress where a majority lives — and a 4/4 split has none.
//!
//! Run with: `cargo run --example airline_partition`

use dvp::prelude::*;
use dvp::workloads::AirlineWorkload;

fn ms(n: u64) -> SimTime {
    SimTime::ZERO + SimDuration::millis(n)
}

fn main() {
    let n = 8;
    let workload = AirlineWorkload {
        n_sites: n,
        flights: 4,
        seats_per_flight: 10_000,
        txns: 400,
        mix: (0.85, 0.15, 0.0, 0.0),
        ..Default::default()
    }
    .generate(7);

    // Partition: sites {0..3} | {4..7} from 500ms to 1500ms.
    let schedule = PartitionSchedule::fully_connected(n)
        .split_at(ms(500), &[&[0, 1, 2, 3], &[4, 5, 6, 7]])
        .heal_at(ms(1500));
    let horizon = ms(10_000);

    println!("=== 8-site airline, 4/4 partition from 500ms to 1500ms ===\n");

    // ---- DvP ----  (conservation is audited inside Scenario::run)
    let d = Scenario::dvp(&workload)
        .name("airline-partition/dvp")
        .net(NetworkConfig::reliable().with_partitions(schedule.clone()))
        .until(horizon)
        .run();

    // ---- traditional 2PC over quorum-replicated data ----
    let t = Scenario::trad(&workload)
        .name("airline-partition/2pc")
        .net(NetworkConfig::reliable().with_partitions(schedule))
        .until(horizon)
        .run();

    println!("                          DvP        2PC+quorum");
    println!(
        "committed                 {:<10} {}",
        d.committed, t.committed
    );
    println!("aborted                   {:<10} {}", d.aborted, t.aborted);
    println!(
        "commit ratio              {:<10.1} {:.1}",
        d.commit_ratio * 100.0,
        t.commit_ratio * 100.0
    );
    // `max_us` is decided transactions only — comparable across engines.
    // The baseline's open-ended lock-holding shows up in `max_blocked_us`.
    let dvp_decided = format!("{:.0}ms", d.max_us as f64 / 1000.0);
    let trad_decided = format!("{:.0}ms", t.max_us as f64 / 1000.0);
    println!("worst decided latency     {dvp_decided:<10} {trad_decided}");
    let dvp_block = format!("{:.0}ms", d.max_blocked_us as f64 / 1000.0);
    let trad_block = format!("{:.0}ms", t.max_blocked_us as f64 / 1000.0);
    println!("worst blocking window     {dvp_block:<10} {trad_block}");
    println!(
        "still blocked at end      {:<10} {}",
        d.still_blocked, t.still_blocked
    );

    println!("\nDvP kept both halves selling seats from their local quotas;");
    println!("2PC could not assemble a majority in either half and, worse,");
    println!("participants caught mid-commit stayed blocked until healing.");

    assert!(d.commit_ratio > t.commit_ratio);
    assert_eq!(d.max_blocked_us, 0, "DvP never blocks");
}
