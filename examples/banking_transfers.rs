//! Banking on DvP: deposits never block, a branch crash loses nothing.
//!
//! The paper's banking anecdote (Section 2.2): in a traditional system a
//! partition can make even a *deposit* impossible, because the balance's
//! copies are unreachable. Under DvP a deposit is a write-only, purely
//! local transaction — it commits at a completely isolated branch.
//!
//! This example runs a small branch network through a partition and a
//! branch crash, does withdrawals, deposits, a cross-account transfer and
//! a final exact balance read, and audits conservation throughout.
//!
//! Run with: `cargo run --example banking_transfers`

use dvp::prelude::*;

fn ms(n: u64) -> SimTime {
    SimTime::ZERO + SimDuration::millis(n)
}

fn main() {
    let mut catalog = Catalog::new();
    let alice = catalog.add("acct-alice", 10_000, Split::Even);
    let bob = catalog.add("acct-bob", 5_000, Split::Even);

    // Branch 2 is partitioned away from 0..=1,3 between 10ms and 300ms;
    // branch 3 crashes at 350ms and recovers at 500ms.
    let schedule = PartitionSchedule::fully_connected(4)
        .isolate_at(ms(10), &[2])
        .heal_at(ms(300));

    let scenario = Scenario::dvp_sites(4, catalog)
        .name("banking-transfers")
        .net(NetworkConfig::reliable().with_partitions(schedule))
        .faults(FaultPlan::none().crash(ms(350), 3).recover(ms(500), 3))
        // While branch 2 is cut off: a deposit there STILL commits.
        .at(2, ms(50), TxnSpec::release(alice, 700))
        // A local-quota withdrawal at the isolated branch also commits.
        .at(2, ms(60), TxnSpec::reserve(alice, 100))
        // A withdrawal too big for local quota fails fast (bounded abort),
        // because no peer is reachable.
        .at(2, ms(70), TxnSpec::reserve(alice, 9_000))
        // Meanwhile the connected majority operates normally.
        .at(0, ms(80), TxnSpec::reserve(bob, 1_200))
        .at(1, ms(100), TxnSpec::transfer(alice, bob, 2_000))
        // After healing and recovery: an exact balance read for Alice.
        .at(0, ms(700), TxnSpec::read(alice));

    // White-box build: this example audits conservation at pause points
    // and inspects per-branch fragments below.
    let mut cluster = scenario.build_dvp();
    for t in [100u64, 250, 400, 600, 2_000] {
        cluster.run_until(ms(t));
        cluster
            .auditor()
            .check_conservation()
            .unwrap_or_else(|e| panic!("at {t}ms: {e}"));
    }
    cluster.run_to_quiescence();

    let m = cluster.stats().txn;
    println!("=== 4-branch bank: partition + branch crash ===\n");
    println!("committed {} / aborted {}", m.committed(), m.aborted());
    for (reason, count) in m.sites.iter().flat_map(|s| s.aborted.iter()) {
        println!("  abort reason {reason:?}: {count}");
    }

    let alice_total: u64 = (0..4)
        .map(|s| cluster.sim.node(s).fragments().get(alice))
        .sum();
    let bob_total: u64 = (0..4)
        .map(|s| cluster.sim.node(s).fragments().get(bob))
        .sum();
    println!("\nAlice: {alice_total}   (10000 +700 deposit −100 −2000 transfer)");
    println!("Bob:   {bob_total}   (5000 −1200 +2000 transfer)");

    let read = m
        .global_commit_order()
        .iter()
        .flat_map(|e| e.reads.clone())
        .next()
        .expect("the balance read committed");
    println!("exact balance read of Alice observed: {}", read.1);

    cluster.auditor().check_reads(&m).expect("read exactness");
    cluster
        .auditor()
        .check_conservation()
        .expect("conservation");
    println!("\ninvariants: conservation OK, read exactness OK");
    println!(
        "branch 3 recovered using {} remote messages (independent recovery)",
        m.sites[3].recovery_remote_messages
    );

    assert_eq!(alice_total, 8_600);
    assert_eq!(bob_total, 5_800);
    assert_eq!(read.1, 8_600);
    assert_eq!(m.sites[3].recovery_remote_messages, 0);
}
